"""Tests for the performance interpolation model."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mmu_cache import MMUCache
from repro.common.errors import ConfigurationError
from repro.core.mmu import MMU, CoLTDesign, make_mmu_config
from repro.core.performance import (
    CoreModel,
    PerformanceResult,
    evaluate_performance,
    mpmi,
    perfect_tlb_result,
)
from repro.osmem.page_table import PageTable
from repro.walker.page_walker import PageWalker


def mmu_after_run(design=CoLTDesign.BASELINE, pages=64, sweeps=2):
    table = PageTable()
    for offset in range(pages):
        table.map_page(1024 + offset, 9000 + offset)
    walker = PageWalker(table, CacheHierarchy(), MMUCache())
    mmu = MMU(make_mmu_config(design), walker)
    for _ in range(sweeps):
        for vpn in range(1024, 1024 + pages):
            mmu.translate(vpn)
    return mmu


class TestCoreModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreModel(base_cpi=0)
        with pytest.raises(ConfigurationError):
            CoreModel(instructions_per_access=0)


class TestPerformanceResult:
    def test_cycle_composition(self):
        result = PerformanceResult(
            instructions=1000, base_cycles=1000,
            l2_hit_cycles=70, walk_cycles=430,
        )
        assert result.tlb_overhead_cycles == 500
        assert result.total_cycles == 1500
        assert result.cpi == pytest.approx(1.5)

    def test_improvement_over(self):
        slow = PerformanceResult(1000, 1000, 0, 500)
        fast = PerformanceResult(1000, 1000, 0, 0)
        assert fast.improvement_over(slow) == pytest.approx(50.0)

    def test_improvement_is_zero_for_self(self):
        result = PerformanceResult(1000, 1000, 10, 10)
        assert result.improvement_over(result) == pytest.approx(0.0)


class TestEvaluate:
    def test_evaluate_uses_mmu_counters(self):
        mmu = mmu_after_run()
        core = CoreModel(base_cpi=1.0, instructions_per_access=3.0)
        result = evaluate_performance(mmu, 128, core)
        assert result.instructions == 128 * 3.0
        assert result.walk_cycles == mmu.total_walk_cycles
        assert result.l2_hit_cycles == mmu.total_l2_hit_cycles

    def test_compulsory_discount_reduces_walk_cycles(self):
        mmu = mmu_after_run()
        core = CoreModel()
        plain = evaluate_performance(mmu, 128, core)
        discounted = evaluate_performance(
            mmu, 128, core, compulsory_discount_cycles=1000.0
        )
        assert discounted.walk_cycles == plain.walk_cycles - 1000.0

    def test_discount_floors_at_zero(self):
        mmu = mmu_after_run()
        result = evaluate_performance(
            mmu, 128, CoreModel(), compulsory_discount_cycles=1e12
        )
        assert result.walk_cycles == 0.0

    def test_zero_accesses_rejected(self):
        mmu = mmu_after_run()
        with pytest.raises(ConfigurationError):
            evaluate_performance(mmu, 0, CoreModel())

    def test_perfect_result_has_no_overhead(self):
        result = perfect_tlb_result(100, CoreModel())
        assert result.tlb_overhead_cycles == 0

    def test_perfect_improvement_bounds_colt(self):
        """The perfect TLB must beat any real design (Fig 21 structure)."""
        core = CoreModel(base_cpi=1.0, instructions_per_access=3.0)
        baseline = evaluate_performance(mmu_after_run(), 128, core)
        colt = evaluate_performance(
            mmu_after_run(CoLTDesign.COLT_SA), 128, core
        )
        perfect = perfect_tlb_result(128, core)
        assert (
            perfect.improvement_over(baseline)
            >= colt.improvement_over(baseline)
            >= 0.0
        )

    def test_mpmi_helper(self):
        core = CoreModel(instructions_per_access=2.0)
        # 10 misses over 500 accesses = 1000 instructions -> 10000 MPMI.
        assert mpmi(10, 500, core) == pytest.approx(10000.0)
