"""Tests for the contiguity scanner and its reports."""

import pytest

from repro.common.types import ContiguityRun, PageAttributes, Translation
from repro.contiguity.scanner import (
    ContiguityReport,
    scan_process,
    scan_translations,
)
from repro.osmem.kernel import Kernel, KernelConfig


def translations(*specs):
    return [Translation(v, p) for v, p in specs]


class TestScanTranslations:
    def test_single_run(self):
        runs = scan_translations(translations((1, 10), (2, 11), (3, 12)))
        assert len(runs) == 1
        assert runs[0].start_vpn == 1
        assert runs[0].start_pfn == 10
        assert runs[0].length == 3

    def test_pfn_break_starts_new_run(self):
        runs = scan_translations(translations((1, 10), (2, 50), (3, 51)))
        assert [(r.start_vpn, r.length) for r in runs] == [(1, 1), (2, 2)]

    def test_vpn_hole_starts_new_run(self):
        runs = scan_translations(translations((1, 10), (5, 11)))
        assert len(runs) == 2

    def test_paper_definition_example(self):
        # Section 3.1: virtual 1,2,3 -> physical 58,59,60 is 3-contiguity.
        runs = scan_translations(translations((1, 58), (2, 59), (3, 60)))
        assert runs[0].length == 3

    def test_attribute_mismatch_breaks_run(self):
        mapped = [
            Translation(1, 10, PageAttributes.PRESENT),
            Translation(2, 11, PageAttributes.PRESENT | PageAttributes.WRITABLE),
        ]
        assert len(scan_translations(mapped)) == 2

    def test_superpages_become_flagged_runs(self):
        mapped = [
            Translation(1, 10),
            Translation(512, 1024, is_superpage=True),
            Translation(1024 + 1, 2000),
        ]
        runs = scan_translations(mapped)
        assert len(runs) == 3
        superpage_run = runs[1]
        assert superpage_run.from_superpage
        assert superpage_run.length == 512

    def test_empty_input(self):
        assert scan_translations([]) == []


class TestContiguityReport:
    def report_from(self, *lengths, superpage_pages=0):
        runs = []
        vpn = 0
        for length in lengths:
            runs.append(ContiguityRun(vpn, vpn + 100_000, length))
            vpn += length + 3
        if superpage_pages:
            runs.append(
                ContiguityRun(1 << 20, 1 << 21, superpage_pages,
                              from_superpage=True)
            )
        return ContiguityReport.from_runs(runs)

    def test_totals(self):
        report = self.report_from(4, 2, superpage_pages=512)
        assert report.total_pages == 4 + 2 + 512
        assert report.superpage_pages == 512

    def test_superpages_excluded_from_average(self):
        with_sp = self.report_from(4, 4, superpage_pages=512)
        without = self.report_from(4, 4)
        assert with_sp.average_contiguity == without.average_contiguity

    def test_cdf_excludes_superpages(self):
        report = self.report_from(4, superpage_pages=512)
        assert report.cdf().at(4) == pytest.approx(1.0)

    def test_fraction_with_contiguity_at_least(self):
        # 8 pages in an 8-run, 2 in a 2-run: 80% at >= 8.
        report = self.report_from(8, 2)
        assert report.fraction_with_contiguity_at_least(8) == pytest.approx(0.8)
        assert report.fraction_with_contiguity_at_least(1) == pytest.approx(1.0)
        assert report.fraction_with_contiguity_at_least(9) == pytest.approx(0.0)

    def test_fraction_on_empty_base_pages(self):
        report = self.report_from(superpage_pages=512)
        assert report.fraction_with_contiguity_at_least(1) == 0.0

    def test_from_process_roundtrip(self):
        kernel = Kernel(KernelConfig(num_frames=2048, ths_enabled=False))
        process = kernel.create_process("p")
        kernel.malloc(process, 64, populate=True)
        report = ContiguityReport.from_process(process)
        assert report.total_pages == 64
        assert report.average_contiguity >= 1.0
        # The scanner agrees with a fresh scan.
        assert len(report.runs) == len(scan_process(process))
