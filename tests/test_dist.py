"""Distributed sharded campaigns: protocol, journal, coordinator.

The distributed layer's contract mirrors the chaos matrix's: sharding
is deterministic (same matrix, same shards, every run), the wire and
the shard journal share the store's integrity frame (torn bytes are
detected, never decoded), and every fault path -- lost workers,
desynced shards, torn journals -- converges on results *bit-identical*
to a single-host run.
"""

import dataclasses
import io
import pickle

import pytest

from repro.common.errors import ConfigurationError, InjectedFaultError
from repro.core.mmu import CoLTDesign
from repro.osmem.kernel import KernelConfig
from repro.osmem.memhog import SIMULATION_AGING
from repro.sim.dist.coordinator import (
    DIST_QUARANTINE_DIR,
    SHARDS_DIR,
    DistributedRunner,
)
from repro.sim.dist.protocol import (
    MSG_HELLO,
    ProtocolError,
    fingerprint_digest,
    read_message,
    write_message,
)
from repro.sim.dist.shard import (
    GROUP_DONE,
    GROUP_FAILED,
    GROUP_PENDING,
    GROUP_RUNNING,
    JOURNAL_NAME,
    ShardJournal,
    assign_groups,
    assign_worker,
    read_journal,
)
from repro.sim.faults import (
    DIST_KINDS,
    FAULTS_ENV,
    EXECUTION_KINDS,
    FaultPlan,
    STORE_KINDS,
)
from repro.sim.runner import ExperimentRunner
from repro.sim.store import ResultStore
from repro.sim.system import SimulationConfig


# ----------------------------------------------------------------------
# Wire protocol.
# ----------------------------------------------------------------------


def _round_trip(message):
    buffer = io.BytesIO()
    write_message(buffer, message)
    buffer.seek(0)
    return buffer


def test_protocol_round_trip():
    message = {"type": MSG_HELLO, "worker": 3, "payload": [1, "two"]}
    assert read_message(_round_trip(message)) == message


def test_protocol_clean_eof_is_none():
    assert read_message(io.BytesIO(b"")) is None


def test_protocol_back_to_back_frames():
    buffer = io.BytesIO()
    write_message(buffer, {"type": "a"})
    write_message(buffer, {"type": "b"})
    buffer.seek(0)
    assert read_message(buffer)["type"] == "a"
    assert read_message(buffer)["type"] == "b"
    assert read_message(buffer) is None


def test_protocol_torn_frame_raises():
    blob = _round_trip({"type": MSG_HELLO, "worker": 0}).getvalue()
    for cut in (5, len(blob) // 2, len(blob) - 1):
        with pytest.raises(ProtocolError):
            read_message(io.BytesIO(blob[:cut]))


def test_protocol_bit_flip_raises():
    blob = bytearray(_round_trip({"type": MSG_HELLO}).getvalue())
    blob[-1] ^= 0x5A
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(bytes(blob)))


def test_protocol_wrong_magic_raises():
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(b"X" * 64))


def test_protocol_untyped_payload_raises():
    buffer = io.BytesIO()
    write_message(buffer, {"no_type_key": 1})
    buffer.seek(0)
    with pytest.raises(ProtocolError):
        read_message(buffer)


def test_fingerprint_digest_is_stable():
    assert fingerprint_digest() == fingerprint_digest()
    assert len(fingerprint_digest()) == 64


# ----------------------------------------------------------------------
# Deterministic sharding.
# ----------------------------------------------------------------------

_GIDS = ["%040x" % (i * 2654435761) for i in range(40)]


def test_assignment_is_deterministic():
    first = assign_groups(_GIDS, [0, 1, 2])
    assert first == assign_groups(list(reversed(_GIDS)), [2, 1, 0])
    assert set(first.values()) <= {0, 1, 2}


def test_assignment_uses_every_worker():
    placed = set(assign_groups(_GIDS, [0, 1, 2]).values())
    assert placed == {0, 1, 2}


def test_reassignment_over_survivors():
    gid = _GIDS[0]
    full = assign_worker(gid, [0, 1, 2])
    survivors = [w for w in (0, 1, 2) if w != full]
    moved = assign_worker(gid, survivors)
    assert moved in survivors
    # Survivor order must not matter.
    assert moved == assign_worker(gid, list(reversed(survivors)))


# ----------------------------------------------------------------------
# Shard journal (write-ahead, integrity-framed).
# ----------------------------------------------------------------------


def test_journal_write_ahead_lifecycle(tmp_path):
    path = tmp_path / JOURNAL_NAME
    journal = ShardJournal(path, worker_id=1, fingerprint="fp")
    assert journal.status("g1") == GROUP_PENDING
    journal.mark_running("g1")
    assert read_journal(path)["groups"] == {"g1": GROUP_RUNNING}
    journal.mark_done("g1")
    journal.mark_failed("g2")
    reopened = ShardJournal.open(path, worker_id=1, fingerprint="fp")
    assert reopened.status("g1") == GROUP_DONE
    assert reopened.status("g2") == GROUP_FAILED
    assert reopened.done_ids() == ["g1"]


def test_journal_torn_write_degrades_to_fresh(tmp_path):
    path = tmp_path / JOURNAL_NAME
    plan = FaultPlan.parse("torn@dist.journal:1")
    journal = ShardJournal(path, worker_id=0, fingerprint="fp",
                           faults=plan)
    journal.mark_done("g1")   # write 0: intact
    journal.mark_done("g2")   # write 1: torn mid-frame
    assert read_journal(path) is None
    reopened = ShardJournal.open(path, worker_id=0, fingerprint="fp")
    assert reopened.entries == {}


def test_journal_corrupt_write_detected(tmp_path):
    path = tmp_path / JOURNAL_NAME
    plan = FaultPlan.parse("corrupt@dist.journal:0")
    ShardJournal(path, worker_id=0, fingerprint="fp",
                 faults=plan).mark_done("g1")
    assert read_journal(path) is None


def test_journal_foreign_fingerprint_starts_fresh(tmp_path):
    path = tmp_path / JOURNAL_NAME
    ShardJournal(path, worker_id=0, fingerprint="old").mark_done("g1")
    reopened = ShardJournal.open(path, worker_id=0, fingerprint="new")
    assert reopened.entries == {}


def test_journal_absent_reads_none(tmp_path):
    assert read_journal(tmp_path / "missing.bin") is None


# ----------------------------------------------------------------------
# Fault grammar edge cases (satellite).
# ----------------------------------------------------------------------


def test_fault_times_exhaustion_at_same_site():
    plan = FaultPlan.parse("raise@capture:0x2")
    for attempt in (0, 1):
        with pytest.raises(InjectedFaultError):
            plan.fire("capture", 0, attempt)
    # Attempt 2 exhausts x2: the site goes quiet, forever.
    plan.fire("capture", 0, 2)
    plan.fire("capture", 0, 3)
    assert plan.counters["raise"] == 2


def test_overlapping_specs_first_wins():
    plan = FaultPlan.parse(
        "torn@store.write:0;corrupt@store.write:0"
    )
    assert plan.corruption(0) == "torn"
    # Both specs parsed; precedence is declaration order, every time.
    assert [spec.kind for spec in plan.specs] == ["torn", "corrupt"]
    assert plan.corruption(0) == "torn"


def test_dist_kind_rejects_task_site():
    with pytest.raises(ConfigurationError, match=r"targets 'dist'"):
        FaultPlan.parse("worker-lost@capture:0")


def test_store_kind_rejects_dist_site():
    with pytest.raises(ConfigurationError,
                       match=r"targets 'store.write'"):
        FaultPlan.parse("torn@dist:0")


def test_execution_kind_rejects_dist_site():
    with pytest.raises(ConfigurationError, match=r"task sites"):
        FaultPlan.parse("crash@dist:0")


def test_unknown_kind_lists_vocabulary():
    with pytest.raises(ConfigurationError) as excinfo:
        FaultPlan.parse("explode@capture:0")
    text = str(excinfo.value)
    assert "unknown fault kind" in text
    for kind in EXECUTION_KINDS + STORE_KINDS + DIST_KINDS:
        assert kind in text


def test_unparseable_spec_names_grammar():
    with pytest.raises(ConfigurationError,
                       match=r"cannot parse fault spec"):
        FaultPlan.parse("worker-lost@dist")  # no index


# ----------------------------------------------------------------------
# End-to-end: DistributedRunner vs the single-host oracle.
# ----------------------------------------------------------------------

#: Two scenario groups (>= 2 so the coordinator actually distributes),
#: two designs each -- small enough for CI, structured enough to cross
#: the wire, the shard stores, and the merge loop.
_BENCHMARKS = ("mcf", "astar")


def _dist_config(benchmark):
    return SimulationConfig(
        benchmark=benchmark,
        kernel=KernelConfig(num_frames=4096),
        accesses=1000,
        scale=0.1,
        seed=11,
        aging=SIMULATION_AGING,
        churn_every=48,
    )


def _dist_matrix():
    return [
        _dist_config(benchmark).with_updates(design=design)
        for benchmark in _BENCHMARKS
        for design in (CoLTDesign.BASELINE, CoLTDesign.COLT_ALL)
    ]


def _pickled(results):
    # Field-wise pickles: whole-result pickles can differ in memo
    # opcodes (object-graph sharing) between a result built in-process
    # and one that crossed the wire, with every value bit-identical.
    return {
        config: tuple(
            pickle.dumps(getattr(result, field.name))
            for field in dataclasses.fields(result)
        )
        for config, result in results.items()
    }


@pytest.fixture
def single_host_oracle():
    return _pickled(ExperimentRunner(jobs=1).run_batch(_dist_matrix()))


def test_distributed_matches_single_host(monkeypatch,
                                         single_host_oracle):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    runner = DistributedRunner(workers=2, jobs=2)
    try:
        results = _pickled(runner.run_batch(_dist_matrix()))
    finally:
        runner.close()
    assert results == single_host_oracle
    assert runner.dist_counters["merged"] == len(_BENCHMARKS)
    assert runner.dist_counters["lost"] == 0


def test_worker_lost_recovers_bit_identical(monkeypatch,
                                            single_host_oracle):
    # Arm every worker: whichever receives the first assignment dies,
    # so a loss fires regardless of how the groups hash out.
    monkeypatch.setenv(FAULTS_ENV, "worker-lost@dist:0,1")
    runner = DistributedRunner(workers=2, jobs=2)
    try:
        results = _pickled(runner.run_batch(_dist_matrix()))
    finally:
        runner.close()
    assert results == single_host_oracle
    assert runner.dist_counters["lost"] >= 1
    # Both workers armed means the fleet can die entirely; the inline
    # fallback must still deliver every group.
    finished = (runner.dist_counters["merged"]
                + runner.dist_counters["inline"])
    assert finished == len(_BENCHMARKS)


def test_desync_quarantined_bit_identical(monkeypatch, tmp_path,
                                          single_host_oracle):
    monkeypatch.setenv(FAULTS_ENV, "shard-desync@dist:0,1")
    store = ResultStore(tmp_path / "store")
    runner = DistributedRunner(workers=2, jobs=2, store=store)
    try:
        results = _pickled(runner.run_batch(_dist_matrix()))
    finally:
        runner.close()
    assert results == single_host_oracle
    assert runner.dist_counters["desyncs"] >= 1
    quarantine = tmp_path / "store" / "dist" / DIST_QUARANTINE_DIR
    assert quarantine.is_dir() and any(quarantine.iterdir())
    # Nothing from a desynced shard may reach the primary store's
    # merge path.
    shards = tmp_path / "store" / "dist" / SHARDS_DIR
    assert not shards.exists() or not any(shards.iterdir())


def test_single_group_runs_in_process(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    runner = DistributedRunner(workers=3, jobs=1)
    config = _dist_config("mcf")
    results = runner.run_batch([config])
    assert set(results) == {config}
    # One group never crosses the wire: no fleet, no dist traffic.
    assert runner.dist_counters["workers"] == 0
