"""Tests for the x86-64 four-level page table."""

import pytest

from repro.common.constants import PTES_PER_CACHE_LINE, SUPERPAGE_PAGES
from repro.common.errors import TranslationError
from repro.common.types import PageAttributes
from repro.osmem.page_table import PageTable, level_index


class TestLevelIndex:
    def test_leaf_index_is_low_nine_bits(self):
        assert level_index(0b1_0000_0011, 3) == 0b1_0000_0011 & 0x1FF

    def test_root_index(self):
        vpn = 5 << 27
        assert level_index(vpn, 0) == 5

    def test_pd_index(self):
        vpn = 7 << 9
        assert level_index(vpn, 2) == 7


class TestBasicMapping:
    def test_map_then_lookup(self):
        table = PageTable()
        table.map_page(1000, 77)
        translation = table.lookup(1000)
        assert translation.pfn == 77
        assert not translation.is_superpage

    def test_unmapped_lookup_is_none(self):
        assert PageTable().lookup(123) is None

    def test_double_map_rejected(self):
        table = PageTable()
        table.map_page(5, 1)
        with pytest.raises(TranslationError):
            table.map_page(5, 2)

    def test_unmap_returns_translation(self):
        table = PageTable()
        table.map_page(5, 9)
        removed = table.unmap_page(5)
        assert removed.pfn == 9
        assert table.lookup(5) is None

    def test_unmap_missing_rejected(self):
        with pytest.raises(TranslationError):
            PageTable().unmap_page(5)

    def test_mapped_pages_counter(self):
        table = PageTable()
        for vpn in range(10):
            table.map_page(vpn, vpn + 100)
        assert table.mapped_pages == 10
        table.unmap_page(3)
        assert table.mapped_pages == 9

    def test_vpn_out_of_canonical_space_rejected(self):
        with pytest.raises(TranslationError):
            PageTable().map_page(1 << 40, 0)

    def test_distant_vpns_use_distinct_subtrees(self):
        table = PageTable()
        table.map_page(0, 1)
        table.map_page(1 << 30, 2)
        assert table.lookup(0).pfn == 1
        assert table.lookup(1 << 30).pfn == 2


class TestSuperpages:
    def test_map_superpage_and_lookup_interior_page(self):
        table = PageTable()
        table.map_superpage(512, 2048)
        inner = table.lookup(512 + 17)
        assert inner.is_superpage
        assert inner.pfn == 2048 + 17

    def test_superpage_alignment_enforced(self):
        table = PageTable()
        with pytest.raises(TranslationError):
            table.map_superpage(100, 512)
        with pytest.raises(TranslationError):
            table.map_superpage(512, 100)

    def test_superpage_base_query(self):
        table = PageTable()
        table.map_superpage(1024, 4096)
        base = table.superpage_base(1024 + 300)
        assert base.vpn == 1024
        assert base.pfn == 4096

    def test_superpage_base_none_for_base_pages(self):
        table = PageTable()
        table.map_page(7, 7)
        assert table.superpage_base(7) is None

    def test_mapped_pages_counts_superpage_as_512(self):
        table = PageTable()
        table.map_superpage(0, 0)
        assert table.mapped_pages == SUPERPAGE_PAGES

    def test_split_superpage_preserves_frames(self):
        table = PageTable()
        table.map_superpage(512, 5120)
        table.split_superpage(512)
        for offset in (0, 100, 511):
            translation = table.lookup(512 + offset)
            assert not translation.is_superpage
            assert translation.pfn == 5120 + offset

    def test_unmap_superpage(self):
        table = PageTable()
        table.map_superpage(512, 1024)
        removed = table.unmap_superpage(512)
        assert removed.is_superpage
        assert table.lookup(512) is None

    def test_pd_slot_conflict_rejected(self):
        table = PageTable()
        table.map_page(512, 1)  # creates a PT under the PD slot
        with pytest.raises(TranslationError):
            table.map_superpage(512, 1024)


class TestAttributes:
    def test_set_attributes(self):
        table = PageTable()
        table.map_page(3, 3)
        table.set_attributes(3, PageAttributes.PRESENT)
        assert table.lookup(3).attributes == PageAttributes.PRESENT

    def test_mark_accessed_sets_bits(self):
        table = PageTable()
        table.map_page(3, 3, PageAttributes.PRESENT)
        table.mark_accessed(3, dirty=True)
        attrs = table.lookup(3).attributes
        assert attrs & PageAttributes.ACCESSED
        assert attrs & PageAttributes.DIRTY

    def test_mark_accessed_on_superpage_hits_pde(self):
        table = PageTable()
        table.map_superpage(512, 1024, PageAttributes.PRESENT)
        table.mark_accessed(512 + 44)
        assert table.lookup(512).attributes & PageAttributes.ACCESSED

    def test_mark_accessed_unmapped_rejected(self):
        with pytest.raises(TranslationError):
            PageTable().mark_accessed(5)


class TestWalkerSupport:
    def test_walk_path_has_four_levels_for_base_page(self):
        table = PageTable()
        table.map_page(12345, 1)
        assert len(table.walk_path_addresses(12345)) == 4

    def test_walk_path_has_three_levels_for_superpage(self):
        table = PageTable()
        table.map_superpage(512, 1024)
        assert len(table.walk_path_addresses(512 + 5)) == 3

    def test_walk_path_addresses_are_distinct_frames(self):
        table = PageTable()
        table.map_page(999, 1)
        addresses = table.walk_path_addresses(999)
        frames = {addr // 4096 for addr in addresses}
        assert len(frames) == 4  # four distinct table nodes

    def test_pte_cache_line_alignment(self):
        table = PageTable()
        for vpn in range(16, 32):
            table.map_page(vpn, vpn + 1000)
        line = table.pte_cache_line(19)
        assert len(line) == PTES_PER_CACHE_LINE
        assert [t.vpn for t in line] == list(range(16, 24))

    def test_pte_cache_line_has_none_for_holes(self):
        table = PageTable()
        table.map_page(8, 1)
        table.map_page(10, 2)
        line = table.pte_cache_line(8)
        assert line[0] is not None
        assert line[1] is None
        assert line[2] is not None

    def test_pte_cache_line_never_crosses_pt_page(self):
        table = PageTable()
        # VPNs 504..511 and 512.. live in different PT nodes; the line
        # for 510 covers only [504, 512).
        for vpn in range(504, 516):
            table.map_page(vpn, vpn)
        line = table.pte_cache_line(510)
        assert [t.vpn for t in line if t] == list(range(504, 512))


class TestIterationAndPruning:
    def test_iter_mappings_in_vpn_order(self):
        table = PageTable()
        for vpn in (500, 3, 80000, 77):
            table.map_page(vpn, vpn)
        vpns = [t.vpn for t in table.iter_mappings()]
        assert vpns == sorted(vpns)

    def test_iter_includes_superpages_once(self):
        table = PageTable()
        table.map_page(3, 3)
        table.map_superpage(512, 1024)
        entries = list(table.iter_mappings())
        assert len(entries) == 2
        assert entries[1].is_superpage

    def test_unmap_prunes_empty_nodes(self):
        release_log = []
        counter = iter(range(10_000, 20_000))
        table = PageTable(
            allocate_frame=lambda: next(counter),
            release_frame=release_log.append,
        )
        table.map_page(12345, 1)
        table.unmap_page(12345)
        # The PT, PD and PDPT nodes all became empty and were released.
        assert len(release_log) == 3

    def test_prune_keeps_shared_nodes(self):
        table = PageTable()
        table.map_page(100, 1)
        table.map_page(101, 2)
        table.unmap_page(100)
        assert table.lookup(101).pfn == 2
