"""Tests for THP management, system aging, and memhog."""

import pytest

from repro.common.rng import SeedSequencer
from repro.contiguity import ContiguityReport
from repro.osmem.kernel import Kernel, KernelConfig
from repro.osmem.memhog import (
    CHARACTERIZATION_AGING,
    SIMULATION_AGING,
    AgingProfile,
    Memhog,
    age_system,
)


@pytest.fixture
def thp_kernel():
    return Kernel(
        KernelConfig(num_frames=4096, kernel_reserved_fraction=0.0)
    )


class TestThpManager:
    def test_eligible_chunk_requires_anonymous(self, thp_kernel):
        from repro.osmem.vma import VMAKind

        process = thp_kernel.create_process("p")
        vma = process.mmap(1024, kind=VMAKind.FILE_BACKED, align_huge=True)
        assert (
            thp_kernel.thp.eligible_chunk(process, vma, vma.start_vpn)
            is None
        )

    def test_eligible_chunk_requires_unpopulated(self, thp_kernel):
        process = thp_kernel.create_process("p")
        vma = process.mmap(1024, align_huge=True)
        chunk = vma.start_vpn
        assert thp_kernel.thp.eligible_chunk(process, vma, chunk) == chunk
        process.note_populated(chunk + 5)
        assert thp_kernel.thp.eligible_chunk(process, vma, chunk) is None

    def test_try_fault_huge_accounts_frames(self, thp_kernel):
        process = thp_kernel.create_process("p")
        vma = process.mmap(512, align_huge=True)
        assert thp_kernel.thp.try_fault_huge(process, vma.start_vpn)
        assert process.resident_pages == 512
        assert thp_kernel.thp.active_superpages == 1

    def test_fallback_when_no_order9(self):
        kernel = Kernel(
            KernelConfig(num_frames=2048, kernel_reserved_fraction=0.0)
        )
        # Consume the order-9+ blocks.
        blocker = kernel.create_process("blocker")
        kernel.malloc(blocker, 1900, populate=True, thp_eligible=False)
        process = kernel.create_process("p")
        vma = process.mmap(512, align_huge=True)
        assert not kernel.thp.try_fault_huge(process, vma.start_vpn)
        assert kernel.thp.counters["huge_fallbacks"] == 1

    def test_split_one_leaves_residual_contiguity(self, thp_kernel):
        process = thp_kernel.create_process("p")
        vma = process.mmap(512, align_huge=True)
        thp_kernel.thp.try_fault_huge(process, vma.start_vpn)
        assert thp_kernel.thp.split_one(lambda pid: process)
        report = ContiguityReport.from_process(process)
        assert report.superpage_pages == 0
        # The split leaves one perfectly contiguous 512-page run.
        assert report.average_contiguity == pytest.approx(512.0)

    def test_split_one_empty_returns_false(self, thp_kernel):
        assert not thp_kernel.thp.split_one(lambda pid: None)

    def test_split_notifies_invalidation(self, thp_kernel):
        events = []
        kernel = thp_kernel
        kernel.add_invalidation_listener(
            lambda pid, vpn, count: events.append((pid, vpn, count))
        )
        process = kernel.create_process("p")
        vma = process.mmap(512, align_huge=True)
        kernel.thp.try_fault_huge(process, vma.start_vpn)
        kernel.thp.split_one(kernel._resolve_process)
        assert (process.pid, vma.start_vpn, 512) in events


class TestAging:
    def test_aging_fragments_memory(self):
        kernel = Kernel(KernelConfig(num_frames=8192))
        age_system(kernel, SeedSequencer(3))
        # Memory is meaningfully occupied and the buddy lists are broken
        # into many blocks.
        assert kernel.physical.free_frames < 8192 * 0.9
        assert kernel.physical.fragmentation_index() > 0.3

    def test_aging_is_deterministic(self):
        results = []
        for _ in range(2):
            kernel = Kernel(KernelConfig(num_frames=4096))
            age_system(kernel, SeedSequencer(11))
            results.append(kernel.physical.free_frames)
        assert results[0] == results[1]

    def test_simulation_aging_depletes_order9(self):
        kernel = Kernel(KernelConfig(num_frames=8192))
        age_system(kernel, SeedSequencer(3), SIMULATION_AGING)
        assert not kernel.buddy.can_allocate(9)
        # ... but mid-order blocks survive.
        assert kernel.buddy.can_allocate(6)

    def test_characterization_ages_harder_than_simulation(self):
        # Probe with page-at-a-time allocations: their contiguity is set
        # by how much small shrapnel the aging left in the buddy lists.
        frag = {}
        for name, profile in (
            ("char", CHARACTERIZATION_AGING),
            ("sim", SIMULATION_AGING),
        ):
            kernel = Kernel(KernelConfig(num_frames=8192))
            age_system(kernel, SeedSequencer(3), profile)
            process = kernel.create_process("probe")
            kernel.malloc(
                process, 512, populate=True, populate_batch=1,
                thp_eligible=False,
            )
            frag[name] = ContiguityReport.from_process(
                process
            ).average_contiguity
        assert frag["sim"] > frag["char"]


class TestMemhog:
    def test_memhog_occupies_requested_fraction(self):
        kernel = Kernel(KernelConfig(num_frames=4096))
        hog = Memhog(kernel, 0.25, SeedSequencer(1))
        hog.start()
        assert hog.process.resident_pages >= 0.2 * 4096

    def test_memhog_fraction_validated(self):
        kernel = Kernel(KernelConfig(num_frames=4096))
        with pytest.raises(Exception):
            Memhog(kernel, 0.0)
        with pytest.raises(Exception):
            Memhog(kernel, 1.5)

    def test_memhog_stop_releases_memory(self):
        kernel = Kernel(KernelConfig(num_frames=4096))
        free_before = kernel.physical.free_frames
        hog = Memhog(kernel, 0.25, SeedSequencer(1))
        hog.start()
        hog.stop()
        # Table-pool blocks stay pinned; everything else returns.
        assert kernel.physical.free_frames >= free_before - 2 * (
            1 << kernel.config.table_pool_order
        )

    def test_double_start_rejected(self):
        kernel = Kernel(KernelConfig(num_frames=4096))
        hog = Memhog(kernel, 0.25, SeedSequencer(1))
        hog.start()
        with pytest.raises(Exception):
            hog.start()
