"""Unit tests for comparison metrics and the exception hierarchy."""

import pytest

from repro.common import errors
from repro.common.statistics import mean, percent_eliminated
from repro.core.mmu import CoLTDesign
from repro.core.performance import PerformanceResult


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "OutOfMemoryError",
            "PageFaultError",
            "TranslationError",
            "AllocationError",
            "WorkloadError",
            "ExperimentError",
        ):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError), name

    def test_catching_base_catches_subclasses(self):
        with pytest.raises(errors.ReproError):
            raise errors.OutOfMemoryError("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestPercentEliminated:
    def test_positive_elimination(self):
        assert percent_eliminated(200, 50) == pytest.approx(75.0)

    def test_negative_means_added_misses(self):
        assert percent_eliminated(100, 150) == pytest.approx(-50.0)

    def test_zero_baseline_is_safe(self):
        """A perfect baseline has nothing to eliminate -- callers
        (elimination rows, figure averages) must get 0.0, not a
        ZeroDivisionError."""
        assert percent_eliminated(0, 0) == 0.0
        assert percent_eliminated(0, 7) == 0.0


class TestPerformanceRowSemantics:
    def test_improvement_direction(self):
        """A design with fewer overhead cycles improves positively."""
        slow = PerformanceResult(1000, 1000, 100, 900)
        fast = PerformanceResult(1000, 1000, 100, 400)
        assert fast.improvement_over(slow) > 0
        assert slow.improvement_over(fast) < 0

    def test_design_enum_values_are_stable(self):
        """Experiment outputs key on these strings; renames break them."""
        assert CoLTDesign.BASELINE.value == "baseline"
        assert CoLTDesign.COLT_SA.value == "colt_sa"
        assert CoLTDesign.COLT_FA.value == "colt_fa"
        assert CoLTDesign.COLT_ALL.value == "colt_all"
        assert CoLTDesign.PERFECT.value == "perfect"
