"""Tests for the hardware page-table walker."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mmu_cache import MMUCache
from repro.common.errors import TranslationError
from repro.osmem.page_table import PageTable
from repro.walker.page_walker import PageWalker


@pytest.fixture
def table():
    table = PageTable()
    for vpn in range(64, 96):
        table.map_page(vpn, vpn + 5000)
    table.map_superpage(1024, 8192)
    return table


@pytest.fixture
def walker(table):
    return PageWalker(table, CacheHierarchy(), MMUCache())


class TestWalks:
    def test_walk_returns_translation(self, walker):
        result = walker.walk(70)
        assert result.translation.vpn == 70
        assert result.translation.pfn == 5070

    def test_unmapped_walk_raises(self, walker):
        with pytest.raises(TranslationError):
            walker.walk(9999)

    def test_cache_line_carries_neighbours(self, walker):
        result = walker.walk(70)
        vpns = {t.vpn for t in result.cache_line_translations}
        # Line base = 70 & ~7 = 64: all eight PTEs are mapped.
        assert vpns == set(range(64, 72))

    def test_superpage_walk_has_no_coalescing_window(self, walker):
        result = walker.walk(1024 + 7)
        assert result.translation.is_superpage
        assert result.cache_line_translations == ()

    def test_first_walk_fetches_all_levels(self, walker):
        result = walker.walk(70)
        assert result.memory_accesses == 4

    def test_mmu_cache_accelerates_second_walk(self, walker):
        first = walker.walk(70)
        second = walker.walk(71)
        assert second.memory_accesses == 1  # PDE cached: PTE fetch only
        assert second.latency < first.latency

    def test_walk_without_mmu_cache(self, table):
        walker = PageWalker(table, CacheHierarchy(), mmu_cache=None)
        assert walker.walk(70).memory_accesses == 4
        assert walker.walk(71).memory_accesses == 4

    def test_llc_warms_across_walks(self, table):
        walker = PageWalker(table, CacheHierarchy(), mmu_cache=None)
        cold = walker.walk(70).latency
        warm = walker.walk(70).latency
        assert warm < cold

    def test_counters_accumulate(self, walker):
        walker.walk(64)
        walker.walk(65)
        assert walker.counters["walks"] == 2
        assert walker.counters["levels_fetched"] >= 5

    def test_retarget_flushes_mmu_cache(self, walker):
        walker.walk(70)
        other = PageTable()
        other.map_page(70, 1)
        walker.retarget(other)
        result = walker.walk(70)
        assert result.translation.pfn == 1
        assert result.memory_accesses == 4  # cold MMU cache again
