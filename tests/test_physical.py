"""Tests for physical-frame bookkeeping."""

import pytest

from repro.common.errors import AllocationError, ConfigurationError
from repro.osmem.physical import KERNEL_PID, NO_OWNER, PhysicalMemory


class TestConstruction:
    def test_all_frames_start_free(self):
        mem = PhysicalMemory(64)
        assert mem.free_frames == 64
        assert mem.allocated_frames == 0

    def test_zero_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            PhysicalMemory(0)


class TestAllocationStateMachine:
    def test_mark_allocated_then_free(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(4, 4, owner=1, movable=True, backing_vpn=100)
        assert mem.allocated_frames == 4
        assert mem.is_allocated(4)
        assert mem.is_free(3)
        mem.mark_free(4, 4)
        assert mem.free_frames == 16

    def test_double_allocation_rejected(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(0, 4, owner=1, movable=True)
        with pytest.raises(AllocationError):
            mem.mark_allocated(2, 4, owner=1, movable=True)

    def test_freeing_free_frames_rejected(self):
        mem = PhysicalMemory(16)
        with pytest.raises(AllocationError):
            mem.mark_free(0, 1)

    def test_out_of_range_rejected(self):
        mem = PhysicalMemory(16)
        with pytest.raises(AllocationError):
            mem.mark_allocated(14, 4, owner=1, movable=True)
        with pytest.raises(AllocationError):
            mem.is_allocated(16)


class TestOwnershipMetadata:
    def test_backing_vpns_are_consecutive(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(2, 3, owner=7, movable=True, backing_vpn=40)
        assert mem.owner_of(3) == 7
        assert [mem.backing_vpn_of(p) for p in (2, 3, 4)] == [40, 41, 42]

    def test_free_frames_have_no_owner(self):
        mem = PhysicalMemory(16)
        assert mem.owner_of(0) == NO_OWNER

    def test_kernel_frames_are_unmovable(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(0, 2, owner=KERNEL_PID, movable=False)
        assert not mem.is_movable(0)

    def test_retag_updates_reverse_map(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(5, 1, owner=1, movable=True, backing_vpn=9)
        mem.retag(5, owner=2, backing_vpn=77)
        assert mem.owner_of(5) == 2
        assert mem.backing_vpn_of(5) == 77

    def test_retag_free_frame_rejected(self):
        mem = PhysicalMemory(16)
        with pytest.raises(AllocationError):
            mem.retag(0, owner=1, backing_vpn=0)

    def test_freeing_clears_metadata(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(0, 1, owner=1, movable=True, backing_vpn=5)
        mem.mark_free(0, 1)
        assert mem.owner_of(0) == NO_OWNER
        assert mem.backing_vpn_of(0) == -1


class TestScans:
    def test_movable_scan_ascends_and_skips_pinned(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(2, 2, owner=1, movable=True, backing_vpn=0)
        mem.mark_allocated(8, 1, owner=KERNEL_PID, movable=False)
        mem.mark_allocated(12, 1, owner=1, movable=True, backing_vpn=2)
        assert list(mem.movable_frames_ascending()) == [2, 3, 12]

    def test_free_scan_descends(self):
        mem = PhysicalMemory(8)
        mem.mark_allocated(0, 6, owner=1, movable=True)
        assert list(mem.free_frames_descending()) == [7, 6]

    def test_free_runs(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(4, 4, owner=1, movable=True)
        mem.mark_allocated(12, 2, owner=1, movable=True)
        runs = mem.free_runs()
        assert [(r.start, r.length) for r in runs] == [
            (0, 4), (8, 4), (14, 2),
        ]

    def test_largest_free_run(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(6, 2, owner=1, movable=True)
        assert mem.largest_free_run() == 8

    def test_largest_free_run_full_memory_is_zero(self):
        mem = PhysicalMemory(4)
        mem.mark_allocated(0, 4, owner=1, movable=True)
        assert mem.largest_free_run() == 0

    def test_fragmentation_index_compact(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(0, 8, owner=1, movable=True)
        # Remaining free memory is one run: index 0.
        assert mem.fragmentation_index() == pytest.approx(0.0)

    def test_fragmentation_index_shattered(self):
        mem = PhysicalMemory(16)
        for start in (1, 3, 5, 7, 9, 11, 13, 15):
            mem.mark_allocated(start, 1, owner=1, movable=True)
        # Free frames alternate singly: largest run 1 of 8 free.
        assert mem.fragmentation_index() == pytest.approx(1 - 1 / 8)

    def test_range_is_free(self):
        mem = PhysicalMemory(16)
        mem.mark_allocated(4, 1, owner=1, movable=True)
        assert mem.range_is_free(0, 4)
        assert not mem.range_is_free(2, 4)
