"""Tests for RNG management, counters, and summary statistics."""

import math

import numpy as np
import pytest

from repro.common.rng import SeedSequencer, derive_seed, make_rng
from repro.common.statistics import (
    CounterSet,
    RunningStat,
    geometric_mean,
    misses_per_million,
    percent_eliminated,
    speedup_percent,
)


class TestDerivedSeeds:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "workload") == derive_seed(42, "workload")

    def test_different_streams_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_seed_is_63_bit_nonnegative(self):
        seed = derive_seed(123456789, "stream")
        assert 0 <= seed < 2**63

    def test_rngs_reproduce_draws(self):
        a = make_rng(7, "x").integers(0, 1000, size=16)
        b = make_rng(7, "x").integers(0, 1000, size=16)
        assert np.array_equal(a, b)

    def test_sequencer_child_namespacing(self):
        seeds = SeedSequencer(5)
        child = seeds.child("osmem")
        # Child streams must differ from equally-named parent streams.
        assert child.seed("x") != seeds.seed("x")

    def test_sequencer_rng_independence(self):
        seeds = SeedSequencer(5)
        a = seeds.rng("a").random(8)
        b = seeds.rng("b").random(8)
        assert not np.allclose(a, b)


class TestCounterSet:
    def test_unknown_counter_reads_zero(self):
        assert CounterSet()["nothing"] == 0

    def test_increment_default_one(self):
        counters = CounterSet(["hits"])
        counters.increment("hits")
        assert counters["hits"] == 1

    def test_increment_by_amount(self):
        counters = CounterSet()
        counters.increment("x", 5)
        counters.increment("x", 2)
        assert counters["x"] == 7

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().increment("x", -1)

    def test_snapshot_is_immutable_copy(self):
        counters = CounterSet(["a"])
        counters.increment("a", 3)
        snap = counters.snapshot()
        counters.increment("a", 10)
        assert snap["a"] == 3
        assert counters["a"] == 13

    def test_snapshot_delta(self):
        counters = CounterSet(["a", "b"])
        counters.increment("a", 2)
        before = counters.snapshot()
        counters.increment("a", 3)
        counters.increment("b", 1)
        delta = before.delta(counters.snapshot())
        assert delta == {"a": 3, "b": 1}

    def test_merge_adds_counters(self):
        left = CounterSet(["a"])
        left.increment("a", 1)
        right = CounterSet()
        right.increment("a", 2)
        right.increment("b", 5)
        left.merge(right)
        assert left["a"] == 3
        assert left["b"] == 5

    def test_reset_zeroes_known_counters(self):
        counters = CounterSet(["a"])
        counters.increment("a", 9)
        counters.reset()
        assert counters["a"] == 0


class TestRunningStat:
    def test_mean_min_max(self):
        stat = RunningStat()
        for value in (1.0, 5.0, 3.0):
            stat.add(value)
        assert stat.mean == pytest.approx(3.0)
        assert stat.minimum == 1.0
        assert stat.maximum == 5.0

    def test_empty_mean_is_zero(self):
        assert RunningStat().mean == 0.0

    def test_merge(self):
        a, b = RunningStat(), RunningStat()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)


class TestMetrics:
    def test_mpmi(self):
        # 50 misses in 1M instructions is 50 MPMI.
        assert misses_per_million(50, 1_000_000) == pytest.approx(50.0)

    def test_mpmi_requires_positive_instructions(self):
        with pytest.raises(ValueError):
            misses_per_million(1, 0)

    def test_percent_eliminated_half(self):
        assert percent_eliminated(100, 50) == pytest.approx(50.0)

    def test_percent_eliminated_negative_when_worse(self):
        assert percent_eliminated(100, 150) == pytest.approx(-50.0)

    def test_percent_eliminated_zero_baseline(self):
        assert percent_eliminated(0, 10) == 0.0

    def test_speedup_percent(self):
        # 120 -> 100 cycles is a 20% improvement.
        assert speedup_percent(120.0, 100.0) == pytest.approx(20.0)

    def test_speedup_requires_positive_cycles(self):
        with pytest.raises(ValueError):
            speedup_percent(10.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
