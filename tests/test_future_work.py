"""Tests for the Section 4.1.5 future-work mechanisms.

The paper defers two refinements: gracefully uncoalescing entries on
invalidation (instead of whole-entry flushes) and replacement that
de-prioritises entries with little coalescing. Both are implemented
behind configuration flags; these tests pin their semantics.
"""

import pytest

from repro.common.types import Translation
from repro.core.mmu import CoLTDesign, make_mmu_config
from repro.tlb.config import (
    FullyAssociativeTLBConfig,
    SetAssociativeTLBConfig,
)
from repro.tlb.entries import CoalescedEntry, RangeEntry
from repro.tlb.fully_associative import FullyAssociativeTLB
from repro.tlb.set_associative import SetAssociativeTLB


def run_of(start_vpn, start_pfn, length):
    return [
        Translation(start_vpn + i, start_pfn + i) for i in range(length)
    ]


class TestGracefulSAInvalidation:
    def graceful_tlb(self):
        return SetAssociativeTLB(
            SetAssociativeTLBConfig(32, 4, 2, graceful_invalidation=True)
        )

    def test_interior_invalidation_splits_entry(self):
        tlb = self.graceful_tlb()
        tlb.insert(CoalescedEntry.from_run(run_of(8, 100, 4), 4))
        tlb.invalidate(9)
        assert tlb.probe(9, update_lru=False) is None
        # Neighbours survive with correct PPNs.
        assert tlb.probe(8) == 100
        assert tlb.probe(10) == 102
        assert tlb.probe(11) == 103
        assert tlb.counters["graceful_splits"] == 2

    def test_edge_invalidation_shrinks_entry(self):
        tlb = self.graceful_tlb()
        tlb.insert(CoalescedEntry.from_run(run_of(8, 100, 4), 4))
        tlb.invalidate(8)
        assert tlb.probe(8, update_lru=False) is None
        for vpn, ppn in ((9, 101), (10, 102), (11, 103)):
            assert tlb.probe(vpn) == ppn

    def test_singleton_invalidation_leaves_nothing(self):
        tlb = self.graceful_tlb()
        tlb.insert_translation(Translation(5, 5))
        tlb.invalidate(5)
        assert tlb.occupancy == 0

    def test_default_behaviour_still_flushes_whole_entry(self):
        tlb = SetAssociativeTLB(SetAssociativeTLBConfig(32, 4, 2))
        tlb.insert(CoalescedEntry.from_run(run_of(8, 100, 4), 4))
        tlb.invalidate(9)
        assert tlb.probe(8, update_lru=False) is None


class TestGracefulFAInvalidation:
    def graceful_tlb(self):
        return FullyAssociativeTLB(
            FullyAssociativeTLBConfig(
                entries=8, allow_coalesced=True, graceful_invalidation=True
            )
        )

    def test_interior_invalidation_splits_range(self):
        tlb = self.graceful_tlb()
        tlb.insert(RangeEntry.from_run(run_of(100, 700, 8)))
        tlb.invalidate(103)
        assert tlb.probe(103, update_lru=False) is None
        assert tlb.probe(100) == 700
        assert tlb.probe(102) == 702
        assert tlb.probe(104) == 704
        assert tlb.probe(107) == 707
        assert tlb.occupancy == 2

    def test_superpages_still_drop_whole(self):
        tlb = self.graceful_tlb()
        tlb.insert_superpage(Translation(512, 1024, is_superpage=True))
        tlb.invalidate(512 + 10)
        assert tlb.occupancy == 0


class TestCoalescingAwareReplacement:
    def test_singleton_evicted_before_coalesced(self):
        # One set (4 entries, 4 ways): fill with a coalesced entry first
        # (making it LRU) and three singletons; the next insert must
        # evict a singleton, not the older coalesced entry.
        tlb = SetAssociativeTLB(
            SetAssociativeTLBConfig(
                4, 4, 2, coalescing_aware_replacement=True
            )
        )
        tlb.insert(CoalescedEntry.from_run(run_of(0, 100, 4), 4))  # LRU
        for vpn in (16, 32, 48):  # same set, different groups
            tlb.insert_translation(Translation(vpn, vpn))
        tlb.insert_translation(Translation(64, 64))
        # The coalesced entry survived despite being least recent.
        assert tlb.probe(0, update_lru=False) == 100
        # The oldest singleton (16) was evicted instead.
        assert tlb.probe(16, update_lru=False) is None

    def test_plain_lru_evicts_oldest_regardless(self):
        tlb = SetAssociativeTLB(SetAssociativeTLBConfig(4, 4, 2))
        tlb.insert(CoalescedEntry.from_run(run_of(0, 100, 4), 4))
        for vpn in (16, 32, 48, 64):
            tlb.insert_translation(Translation(vpn, vpn))
        assert tlb.probe(0, update_lru=False) is None

    def test_ties_broken_by_recency(self):
        tlb = SetAssociativeTLB(
            SetAssociativeTLBConfig(
                4, 4, 2, coalescing_aware_replacement=True
            )
        )
        for vpn in (0, 16, 32, 48):  # four singletons
            tlb.insert_translation(Translation(vpn, vpn))
        tlb.probe(0)  # promote the oldest
        tlb.insert_translation(Translation(64, 64))
        assert tlb.probe(16, update_lru=False) is None  # LRU singleton
        assert tlb.probe(0, update_lru=False) == 0


class TestFactoryFlags:
    def test_make_mmu_config_propagates_flags(self):
        config = make_mmu_config(
            CoLTDesign.COLT_ALL,
            graceful_invalidation=True,
            coalescing_aware_replacement=True,
        )
        assert config.l1.graceful_invalidation
        assert config.l2.coalescing_aware_replacement
        assert config.superpage.graceful_invalidation

    def test_defaults_stay_paper_faithful(self):
        config = make_mmu_config(CoLTDesign.COLT_ALL)
        assert not config.l1.graceful_invalidation
        assert not config.l2.coalescing_aware_replacement
        assert not config.superpage.graceful_invalidation
