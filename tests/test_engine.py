"""Vectorized replay engine: bit-identity against the scalar oracle.

The vector engine is only a valid optimisation if it is *invisible* in
the results: every design, every MMU-override knob, every epoch
boundary and every fault-recovery path must produce results
bit-identical to ``repro.sim.replay.replay_scenario``. These tests pin
that contract, plus the engine-selection plumbing (``--engine`` /
``COLT_ENGINE`` / ``COLT_EPOCH_MAX``) around it.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.mmu import CoLTDesign, make_mmu_config
from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.obs.trace import PROFILE_ENV, reset_tracing
from repro.osmem.kernel import KernelConfig
from repro.osmem.memhog import SIMULATION_AGING
from repro.sim.engine import (
    DEFAULT_EPOCH_MAX,
    ENGINE_ENV,
    EPOCH_MAX_ENV,
    epoch_max,
    replay_with_engine,
    resolve_engine,
)
from repro.sim.engine.vector import vector_replay_scenario
from repro.sim.faults import FaultPlan
from repro.sim.replay import replay_scenario
from repro.sim.resilience import RetryPolicy
from repro.sim.runner import ExperimentRunner
from repro.sim.scenario import capture_scenario
from repro.sim.system import SimulationConfig
from repro.experiments.environments import simulation_config
from repro.experiments.scale import QUICK

ALL_DESIGNS = (
    CoLTDesign.BASELINE,
    CoLTDesign.COLT_SA,
    CoLTDesign.COLT_FA,
    CoLTDesign.COLT_ALL,
    CoLTDesign.PERFECT,
)


def small_config(**overrides):
    defaults = dict(
        benchmark="gobmk",
        design=CoLTDesign.COLT_ALL,
        kernel=KernelConfig(num_frames=4096),
        accesses=4000,
        scale=0.25,
        seed=11,
        aging=SIMULATION_AGING,
        churn_every=48,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def assert_identical(scalar, vector):
    assert vector.accesses == scalar.accesses
    assert vector.l1_misses == scalar.l1_misses
    assert vector.l2_misses == scalar.l2_misses
    assert vector.mmu_counters.values == scalar.mmu_counters.values
    assert vector.performance == scalar.performance
    assert vector.contiguity == scalar.contiguity


@pytest.fixture(autouse=True)
def _engine_env_clean(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    monkeypatch.delenv(EPOCH_MAX_ENV, raising=False)


@pytest.fixture(scope="module")
def quick_scenario():
    """One QUICK-scale capture, shared by every equivalence test."""
    return capture_scenario(simulation_config(QUICK.benchmarks[0], QUICK))


@pytest.fixture(scope="module")
def small_scenario():
    """A churn-heavy small capture: shootdowns land mid-window."""
    return capture_scenario(small_config())


class TestBitIdentity:
    @pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.value)
    def test_quick_scale_all_designs(self, quick_scenario, design):
        config = simulation_config(
            QUICK.benchmarks[0], QUICK
        ).with_updates(design=design)
        scalar = replay_scenario(quick_scenario, config)
        vector = vector_replay_scenario(quick_scenario, config)
        assert_identical(scalar, vector)

    @pytest.mark.parametrize("design, overrides", [
        pytest.param(
            CoLTDesign.COLT_ALL, dict(graceful_invalidation=True),
            id="graceful-invalidation",
        ),
        pytest.param(
            CoLTDesign.COLT_ALL, dict(coalescing_aware_replacement=True),
            id="coalescing-aware-replacement",
        ),
        pytest.param(
            CoLTDesign.COLT_SA, dict(coalescing_window=4),
            id="coalescing-window",
        ),
        pytest.param(
            CoLTDesign.COLT_FA, dict(fa_fill_l2=False), id="no-l2-echo",
        ),
        pytest.param(
            CoLTDesign.COLT_FA, dict(max_fa_span=16), id="fa-span-16",
        ),
        pytest.param(CoLTDesign.COLT_ALL, dict(l2_ways=8), id="l2-8way"),
        pytest.param(CoLTDesign.COLT_SA, dict(sa_shift=3), id="sa-shift-3"),
    ])
    def test_mmu_override_knobs(self, small_scenario, design, overrides):
        """Every fill-policy/TLB-shape knob replays identically."""
        config = small_config().with_updates(
            design=design, mmu=make_mmu_config(design, **overrides)
        )
        assert_identical(
            replay_scenario(small_scenario, config),
            vector_replay_scenario(small_scenario, config),
        )

    def test_shootdowns_split_epochs(self, small_scenario):
        """Invalidation events mid-log must become epoch boundaries."""
        before = small_scenario.inval_before.tolist()
        assert before, "scenario must carry shootdowns"
        n = small_scenario.accesses
        assert any(0 < b < n for b in before), (
            "regression guard: the captured churn must land shootdowns "
            "strictly inside the access log"
        )
        for design in ALL_DESIGNS:
            config = small_config().with_updates(design=design)
            assert_identical(
                replay_scenario(small_scenario, config),
                vector_replay_scenario(small_scenario, config),
            )

    def test_tiny_epoch_chunks(self, small_scenario, monkeypatch):
        """Chunking the log into 8-access epochs changes nothing."""
        monkeypatch.setenv(EPOCH_MAX_ENV, "8")
        config = small_config()
        assert_identical(
            replay_scenario(small_scenario, config),
            vector_replay_scenario(small_scenario, config),
        )

    def test_coalescing_histograms_identical(
        self, small_scenario, monkeypatch
    ):
        """Batched observer callbacks aggregate to the scalar histogram."""
        monkeypatch.setenv(PROFILE_ENV, "1")
        reset_tracing()
        config = small_config()
        series = []
        try:
            for fn in (replay_scenario, vector_replay_scenario):
                set_registry(MetricsRegistry())
                fn(small_scenario, config)
                snapshot = get_registry().snapshot(reset=True)
                entry = snapshot.get("colt_coalesce_run_length")
                assert entry is not None
                series.append(entry["series"])
        finally:
            set_registry(None)
            monkeypatch.delenv(PROFILE_ENV)
            reset_tracing()
        assert series[0] == series[1]


class TestEngineSelection:
    def test_resolve_engine_precedence(self, monkeypatch):
        assert resolve_engine() == "scalar"
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert resolve_engine() == "vector"
        assert resolve_engine("scalar") == "scalar"  # explicit wins

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("turbo")

    def test_runner_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(engine="turbo")

    def test_epoch_max_parsing(self, monkeypatch):
        assert epoch_max() == DEFAULT_EPOCH_MAX
        monkeypatch.setenv(EPOCH_MAX_ENV, "512")
        assert epoch_max() == 512
        monkeypatch.setenv(EPOCH_MAX_ENV, "0")
        assert epoch_max() == 1
        monkeypatch.setenv(EPOCH_MAX_ENV, "not-a-number")
        assert epoch_max() == DEFAULT_EPOCH_MAX

    def test_sanitized_runs_take_the_scalar_path(self):
        """Sanitizers attach to live TLB objects: vector must defer."""
        config = small_config(accesses=1500, sanitize=True)
        scenario = capture_scenario(config)
        assert_identical(
            replay_scenario(scenario, config),
            replay_with_engine(scenario, config, engine="vector"),
        )


class TestRunnerIntegration:
    def test_vector_runner_matches_scalar_baseline(self):
        """The full fan-out path, vector engine end to end."""
        base = small_config(accesses=1500, design=CoLTDesign.BASELINE)
        scalar = ExperimentRunner(jobs=1).run_designs(base)
        vector = ExperimentRunner(jobs=1, engine="vector").run_designs(base)
        assert scalar == vector

    def test_faulted_vector_run_matches_scalar_baseline(self):
        """Chaos case: a faulted vector run recovers to the fault-free
        scalar results -- retries re-enter the vector engine, and the
        engines stay interchangeable under the resilience machinery."""
        base = small_config(accesses=1500, design=CoLTDesign.BASELINE)
        scalar = ExperimentRunner(
            jobs=1, policy=RetryPolicy(max_retries=0)
        ).run_designs(base)
        runner = ExperimentRunner(
            jobs=2,
            engine="vector",
            policy=RetryPolicy(max_retries=3, backoff_s=0.01),
            faults=FaultPlan.parse("raise@replay:0"),
        )
        assert runner.run_designs(base) == scalar
        assert runner.resilience_counters.as_dict()["retries"] >= 1
