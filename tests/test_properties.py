"""Property-based tests (hypothesis) on the core data structures.

These check the invariants everything else relies on:

* the buddy allocator never corrupts its free lists, never double-books
  a frame, and conserves memory across arbitrary alloc/free sequences;
* coalesced TLB entries reproduce exactly the translations they were
  built from (the PPN generation logic is sound);
* the set-associative TLB never returns a wrong PPN, whatever sequence
  of fills, lookups and invalidations it sees;
* the contiguity scanner's runs partition the mapped pages;
* weighted CDFs are monotone and end at 1.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.common.cdfs import WeightedCDF, average_contiguity, contiguity_cdf
from repro.common.errors import OutOfMemoryError
from repro.common.types import PageAttributes, Translation
from repro.contiguity.scanner import scan_translations
from repro.core.coalescing import contiguous_run_around
from repro.osmem.buddy import BuddyAllocator
from repro.tlb.config import SetAssociativeTLBConfig
from repro.tlb.entries import CoalescedEntry, RangeEntry
from repro.tlb.set_associative import SetAssociativeTLB

# ---------------------------------------------------------------------------
# Buddy allocator.
# ---------------------------------------------------------------------------

buddy_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(0, 5)),
        st.tuples(st.just("alloc_exact"), st.integers(1, 48)),
        st.tuples(st.just("best_effort"), st.integers(1, 64)),
        st.tuples(st.just("free"), st.integers(0, 1_000_000)),
    ),
    max_size=60,
)


@given(ops=buddy_ops)
@settings(max_examples=120, deadline=None)
def test_buddy_invariants_hold_under_arbitrary_ops(ops):
    buddy = BuddyAllocator(256)
    live = []  # (start, length) runs we own
    for op, arg in ops:
        if op == "alloc":
            try:
                start = buddy.alloc_block(arg)
                live.append((start, 1 << arg))
            except OutOfMemoryError:
                pass
        elif op == "alloc_exact":
            try:
                start, pages = buddy.alloc_exact(arg)
                live.append((start, pages))
            except OutOfMemoryError:
                pass
        elif op == "best_effort":
            try:
                live.extend(buddy.alloc_run_best_effort(arg))
            except OutOfMemoryError:
                pass
        elif op == "free" and live:
            start, length = live.pop(arg % len(live))
            buddy.free_run(start, length)
        buddy.check_invariants()
        # Conservation: free + live == total.
        owned = sum(length for _, length in live)
        assert buddy.free_pages + owned == 256
        # No two live runs overlap.
        frames = set()
        for start, length in live:
            run = set(range(start, start + length))
            assert not (run & frames)
            frames |= run


@given(ops=buddy_ops)
@settings(max_examples=60, deadline=None)
def test_buddy_free_everything_restores_full_memory(ops):
    buddy = BuddyAllocator(256)
    live = []
    for op, arg in ops:
        try:
            if op == "alloc":
                live.append((buddy.alloc_block(arg), 1 << arg))
            elif op == "alloc_exact":
                live.append(buddy.alloc_exact(arg))
            elif op == "best_effort":
                live.extend(buddy.alloc_run_best_effort(arg))
            elif op == "free" and live:
                start, length = live.pop(arg % len(live))
                buddy.free_run(start, length)
        except OutOfMemoryError:
            pass
    for start, length in live:
        buddy.free_run(start, length)
    assert buddy.free_pages == 256
    # Full merge back to the single seed block (256 = one order-8 block).
    assert buddy.free_blocks_at(8) == 1
    buddy.check_invariants()


# ---------------------------------------------------------------------------
# Coalesced entries.
# ---------------------------------------------------------------------------

@st.composite
def contiguous_runs(draw, max_group=8):
    group_size = draw(st.sampled_from([1, 2, 4, 8]))
    group_base = draw(st.integers(0, 1000)) * group_size
    start_slot = draw(st.integers(0, group_size - 1))
    length = draw(st.integers(1, group_size - start_slot))
    base_pfn = draw(st.integers(0, 1 << 30))
    run = [
        Translation(group_base + start_slot + i, base_pfn + i)
        for i in range(length)
    ]
    return run, group_size


@given(data=contiguous_runs())
@settings(max_examples=200)
def test_coalesced_entry_reproduces_its_run(data):
    run, group_size = data
    entry = CoalescedEntry.from_run(run, group_size)
    assert entry.coalesced_count == len(run)
    for translation in run:
        assert entry.covers(translation.vpn)
        assert entry.ppn_for(translation.vpn) == translation.pfn
    # And covers nothing else in the group.
    covered = {t.vpn for t in run}
    for slot in range(group_size):
        vpn = entry.group_base_vpn + slot
        if vpn not in covered:
            assert not entry.covers(vpn)


@given(
    base_vpn=st.integers(0, 1 << 30),
    base_pfn=st.integers(0, 1 << 30),
    span=st.integers(1, 300),
    probe=st.integers(-10, 320),
)
@settings(max_examples=200)
def test_range_entry_covers_exactly_its_span(base_vpn, base_pfn, span, probe):
    entry = RangeEntry(base_vpn, span, base_pfn,
                       PageAttributes.default_user())
    vpn = base_vpn + probe
    if vpn < 0:
        return
    if 0 <= probe < span:
        assert entry.covers(vpn)
        assert entry.ppn_for(vpn) == base_pfn + probe
    else:
        assert not entry.covers(vpn)


# ---------------------------------------------------------------------------
# Set-associative TLB: never a wrong answer.
# ---------------------------------------------------------------------------

@given(
    vpns=st.lists(st.integers(0, 255), min_size=1, max_size=200),
    shift=st.sampled_from([0, 1, 2, 3]),
)
@settings(max_examples=80, deadline=None)
def test_sa_tlb_never_returns_wrong_ppn(vpns, shift):
    """Fill from a fixed 'page table' (vpn -> vpn + 7777) in arbitrary
    order with interleaved lookups; every hit must be correct."""
    tlb = SetAssociativeTLB(SetAssociativeTLBConfig(16, 4, shift))
    for vpn in vpns:
        hit = tlb.probe(vpn)
        if hit is not None:
            assert hit == vpn + 7777
        else:
            tlb.insert_translation(Translation(vpn, vpn + 7777))
    # Every resident translation is also correct.
    for entry in tlb.entries():
        for slot in range(entry.group_size):
            vpn = entry.group_base_vpn + slot
            if entry.covers(vpn):
                assert entry.ppn_for(vpn) == vpn + 7777


@given(
    vpns=st.lists(st.integers(0, 127), min_size=1, max_size=120),
    invalidate=st.lists(st.integers(0, 127), max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_sa_tlb_invalidation_removes_coverage(vpns, invalidate):
    tlb = SetAssociativeTLB(SetAssociativeTLBConfig(16, 4, 2))
    for vpn in vpns:
        if tlb.probe(vpn) is None:
            tlb.insert_translation(Translation(vpn, vpn))
    for vpn in invalidate:
        tlb.invalidate(vpn)
        assert tlb.probe(vpn, update_lru=False) is None


# ---------------------------------------------------------------------------
# Contiguity scanner.
# ---------------------------------------------------------------------------

@st.composite
def sparse_mappings(draw):
    """A VPN-sorted list of translations with random contiguity breaks."""
    count = draw(st.integers(1, 120))
    vpn, pfn = 0, draw(st.integers(0, 10_000))
    translations = []
    for _ in range(count):
        vpn += draw(st.sampled_from([1, 1, 1, 2, 5]))  # occasional holes
        if draw(st.booleans()):
            pfn += 1  # stays contiguous only if vpn also advanced by 1
        else:
            pfn = draw(st.integers(0, 100_000))
        translations.append(Translation(vpn, pfn))
    return translations


@given(mappings=sparse_mappings())
@settings(max_examples=150)
def test_scanner_runs_partition_pages(mappings):
    runs = scan_translations(mappings)
    # Total pages in runs equals number of translations.
    assert sum(r.length for r in runs) == len(mappings)
    # Runs are disjoint and each run is genuinely contiguous in both
    # spaces per the original mappings.
    by_vpn = {t.vpn: t for t in mappings}
    seen = set()
    for run in runs:
        for offset in range(run.length):
            vpn = run.start_vpn + offset
            assert vpn not in seen
            seen.add(vpn)
            assert by_vpn[vpn].pfn == run.start_pfn + offset


@given(mappings=sparse_mappings())
@settings(max_examples=100)
def test_scanner_runs_are_maximal(mappings):
    runs = scan_translations(mappings)
    by_vpn = {t.vpn: t for t in mappings}
    for run in runs:
        prev = by_vpn.get(run.start_vpn - 1)
        if prev is not None:
            assert not prev.is_contiguous_with(by_vpn[run.start_vpn])
        nxt = by_vpn.get(run.start_vpn + run.length)
        if nxt is not None:
            last = by_vpn[run.start_vpn + run.length - 1]
            assert not last.is_contiguous_with(nxt)


# ---------------------------------------------------------------------------
# Coalescing logic.
# ---------------------------------------------------------------------------

@given(mappings=sparse_mappings(), index=st.integers(0, 119))
@settings(max_examples=100)
def test_coalescing_run_is_contiguous_and_contains_demand(mappings, index):
    demand = mappings[index % len(mappings)]
    base = demand.vpn & ~7
    line = [t for t in mappings if base <= t.vpn < base + 8]
    run = contiguous_run_around(line, demand.vpn)
    assert any(t.vpn == demand.vpn for t in run)
    for a, b in zip(run, run[1:]):
        assert a.is_contiguous_with(b)


# ---------------------------------------------------------------------------
# CDFs.
# ---------------------------------------------------------------------------

@given(
    lengths=st.lists(st.integers(1, 1024), min_size=1, max_size=100)
)
@settings(max_examples=150)
def test_contiguity_cdf_properties(lengths):
    cdf = contiguity_cdf(lengths)
    values = [cdf.at(x) for x in (1, 2, 4, 16, 64, 256, 1024)]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
    assert cdf.at(1024) == pytest.approx(1.0)
    avg = average_contiguity(lengths)
    assert min(lengths) <= avg <= max(lengths) + 1e-9
