"""Eager configuration validation: impossible runs fail at construction.

Campaigns make late failures expensive -- a config that can never
simulate must be rejected when it is built, with a message naming the
offending knob, not hours later inside a worker. These are the
rejection matrices for :class:`repro.sim.system.SimulationConfig` and
the TLB geometry dataclasses.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.osmem.kernel import KernelConfig
from repro.sim.system import SimulationConfig
from repro.tlb.config import (
    FullyAssociativeTLBConfig,
    SetAssociativeTLBConfig,
)


class TestSimulationConfigValidation:
    def test_defaults_are_valid(self):
        SimulationConfig()

    @pytest.mark.parametrize("kwargs, needle", [
        ({"accesses": 0}, "accesses"),
        ({"accesses": -5}, "accesses"),
        ({"memhog_fraction": 1.0}, "memhog_fraction"),
        ({"memhog_fraction": -0.1}, "memhog_fraction"),
        ({"scale": 0.0}, "scale"),
        ({"scale": -1.0}, "scale"),
        ({"tick_every": -1}, "tick_every"),
        ({"churn_every": -1}, "churn_every"),
        ({"churn_pages": -1}, "churn_pages"),
        ({"churn_live_limit": -1}, "churn_live_limit"),
        ({"churn_every": 10, "churn_pages": 0}, "churn_pages"),
        ({"llc_pollution_per_access": -0.5}, "llc_pollution"),
        ({"benchmark": "quake3"}, "quake3"),
    ])
    def test_rejection_matrix(self, kwargs, needle):
        with pytest.raises(ConfigurationError, match=needle):
            SimulationConfig(**kwargs)

    def test_footprint_must_fit_physical_memory(self):
        # mcf maps 26000 pages at scale 1.0; 1024 frames cannot hold it.
        with pytest.raises(ConfigurationError) as exc_info:
            SimulationConfig(
                benchmark="mcf", kernel=KernelConfig(num_frames=1024)
            )
        message = str(exc_info.value)
        assert "mcf" in message
        assert "num_frames" in message  # says what to change

    def test_footprint_scales_down_into_range(self):
        # The same machine is fine once the footprint is scaled down.
        SimulationConfig(
            benchmark="mcf",
            kernel=KernelConfig(num_frames=4096),
            scale=0.1,
        )

    def test_zero_disables_are_still_legal(self):
        SimulationConfig(
            tick_every=0, churn_every=0, churn_pages=0,
            churn_live_limit=0, llc_pollution_per_access=0.0,
        )

    def test_messages_name_the_offending_value(self):
        with pytest.raises(ConfigurationError, match="-3"):
            SimulationConfig(accesses=-3)
        with pytest.raises(ConfigurationError, match="known"):
            SimulationConfig(benchmark="doom")


class TestTLBGeometryValidation:
    def test_default_geometries_are_valid(self):
        SetAssociativeTLBConfig(32, 4)
        FullyAssociativeTLBConfig()

    def test_ways_exceeding_entries_is_named_explicitly(self):
        with pytest.raises(ConfigurationError) as exc_info:
            SetAssociativeTLBConfig(entries=4, ways=8, name="l1_tlb")
        message = str(exc_info.value)
        assert "associativity 8" in message
        assert "l1_tlb" in message

    @pytest.mark.parametrize("entries, ways", [
        (0, 1), (32, 0), (-4, 4),
    ])
    def test_non_positive_geometry(self, entries, ways):
        with pytest.raises(ConfigurationError, match=">= 1"):
            SetAssociativeTLBConfig(entries, ways)

    def test_non_power_of_two_set_count(self):
        # 24 entries / 4 ways = 6 sets: not indexable by bit masking.
        with pytest.raises(ConfigurationError, match="power of two"):
            SetAssociativeTLBConfig(24, 4)

    def test_indivisible_geometry(self):
        with pytest.raises(ConfigurationError, match="divisible"):
            SetAssociativeTLBConfig(30, 4)

    def test_index_shift_bounds(self):
        SetAssociativeTLBConfig(32, 4, index_shift=3)
        with pytest.raises(ConfigurationError, match="index_shift"):
            SetAssociativeTLBConfig(32, 4, index_shift=4)

    def test_fa_tlb_bounds(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            FullyAssociativeTLBConfig(entries=0)
        with pytest.raises(ConfigurationError, match="cache line"):
            FullyAssociativeTLBConfig(max_span=4)
