"""Tests for VMAs, address spaces, and the process model."""

import pytest

from repro.common.constants import SUPERPAGE_PAGES
from repro.common.errors import PageFaultError
from repro.osmem.process import Process
from repro.osmem.vma import VMA, AddressSpace, VMAKind


class TestVMA:
    def test_bounds(self):
        vma = VMA(start_vpn=100, num_pages=10)
        assert vma.end_vpn == 110
        assert vma.contains(100)
        assert vma.contains(109)
        assert not vma.contains(110)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            VMA(start_vpn=-1, num_pages=1)
        with pytest.raises(ValueError):
            VMA(start_vpn=0, num_pages=0)

    def test_huge_aligned_chunks(self):
        vma = VMA(start_vpn=100, num_pages=2000)
        chunks = list(vma.huge_aligned_chunks())
        assert chunks == [512, 1024, 1536]
        for chunk in chunks:
            assert chunk % SUPERPAGE_PAGES == 0
            assert chunk >= vma.start_vpn
            assert chunk + SUPERPAGE_PAGES <= vma.end_vpn

    def test_no_chunks_in_small_vma(self):
        assert list(VMA(0, 100).huge_aligned_chunks()) == []

    def test_chunk_for_interior_page(self):
        vma = VMA(0, 2048)
        assert vma.chunk_for(700) == 512

    def test_chunk_for_edge_page_outside(self):
        vma = VMA(100, 600)  # chunk [512, 1024) exceeds end (700)
        assert vma.chunk_for(600) is None


class TestAddressSpace:
    def test_map_returns_disjoint_regions(self):
        space = AddressSpace()
        a = space.map(100)
        b = space.map(200)
        assert a.end_vpn <= b.start_vpn

    def test_guard_gap_between_regions(self):
        space = AddressSpace()
        a = space.map(10)
        b = space.map(10)
        assert b.start_vpn >= a.end_vpn + AddressSpace.GUARD_PAGES

    def test_align_huge_rounds_start(self):
        space = AddressSpace()
        space.map(10)
        aligned = space.map(600, align_huge=True)
        assert aligned.start_vpn % SUPERPAGE_PAGES == 0

    def test_find(self):
        space = AddressSpace()
        vma = space.map(50)
        assert space.find(vma.start_vpn + 10) is vma
        assert space.find(vma.end_vpn) is None

    def test_require_raises_for_unmapped(self):
        with pytest.raises(PageFaultError):
            AddressSpace().require(5)

    def test_map_fixed_overlap_rejected(self):
        space = AddressSpace()
        space.map_fixed(1000, 100)
        with pytest.raises(PageFaultError):
            space.map_fixed(1050, 100)

    def test_map_fixed_non_overlapping_ok(self):
        space = AddressSpace()
        space.map_fixed(1000, 100)
        vma = space.map_fixed(2000, 100)
        assert space.find(2050) is vma

    def test_unmap(self):
        space = AddressSpace()
        vma = space.map(10)
        space.unmap(vma)
        assert space.find(vma.start_vpn) is None

    def test_unmap_foreign_vma_rejected(self):
        space = AddressSpace()
        space.map(10)
        with pytest.raises(PageFaultError):
            space.unmap(VMA(999999, 10))

    def test_total_pages(self):
        space = AddressSpace()
        space.map(10)
        space.map(32)
        assert space.total_pages == 42


class TestProcess:
    def test_pid_must_be_positive(self):
        with pytest.raises(ValueError):
            Process(0)

    def test_population_tracking(self):
        process = Process(1)
        process.mmap(100)
        process.note_populated(process.address_space.find(
            0x10_0000).start_vpn, 5)
        assert process.resident_pages == 5

    def test_unpopulated_run_respects_limit_and_vma_end(self):
        process = Process(1)
        vma = process.mmap(10)
        assert process.unpopulated_run_from(vma.start_vpn, 100) == 10
        assert process.unpopulated_run_from(vma.start_vpn, 4) == 4

    def test_unpopulated_run_stops_at_populated_page(self):
        process = Process(1)
        vma = process.mmap(10)
        process.note_populated(vma.start_vpn + 3)
        assert process.unpopulated_run_from(vma.start_vpn, 100) == 3

    def test_chunk_is_unpopulated(self):
        process = Process(1)
        vma = process.mmap(2048, align_huge=True)
        chunk = vma.start_vpn
        assert process.chunk_is_unpopulated(chunk)
        process.note_populated(chunk + 17)
        assert not process.chunk_is_unpopulated(chunk)

    def test_note_unpopulated(self):
        process = Process(1)
        vma = process.mmap(10)
        process.note_populated(vma.start_vpn, 10)
        process.note_unpopulated(vma.start_vpn + 2, 3)
        assert process.resident_pages == 7

    def test_thp_eligibility_passthrough(self):
        process = Process(1)
        vma = process.mmap(1024, thp_eligible=False)
        assert not vma.thp_eligible
