"""Tests for the live telemetry plane (repro.obs.serve / repro.obs.live).

Covers the Prometheus text exposition (round-tripped through a tiny
text-format parser written here), label-value escaping, the histogram
bucket-mismatch merge rejection, the HTTP endpoints, and the headline
guarantee: a campaign served concurrently by ``/metrics`` polling stays
bit-identical to an unserved run.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.registry import get_experiment
from repro.experiments.scale import ExperimentScale
from repro.obs.live import ProgressTracker, get_progress, reset_progress
from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    set_registry,
)
from repro.obs.serve import (
    TelemetryServer,
    prometheus_text,
    telemetry_port_from_env,
)
from repro.obs.trace import PROFILE_ENV, TRACE_ENV, reset_tracing
from repro.sim.campaign import CampaignManifest, CampaignRunner
from repro.sim.runner import ExperimentRunner


@pytest.fixture
def obs_profile(monkeypatch):
    """Metrics-only observability, state reset around the test."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    monkeypatch.setenv(PROFILE_ENV, "1")
    reset_tracing()
    set_registry(None)
    reset_progress()
    yield
    reset_tracing()
    set_registry(None)
    reset_progress()


# ---------------------------------------------------------------------------
# A tiny Prometheus text-format parser (the test's independent reader).
# ---------------------------------------------------------------------------


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                out.append(ch + nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> dict:
    labels = {}
    rest = text
    while rest:
        name, rest = rest.split("=", 1)
        assert rest.startswith('"')
        # Find the closing unescaped quote.
        i, escaped = 1, False
        while True:
            if rest[i] == "\\" and not escaped:
                escaped = True
            elif rest[i] == '"' and not escaped:
                break
            else:
                escaped = False
            i += 1
        labels[name.strip()] = _unescape_label(rest[1:i])
        rest = rest[i + 1:].lstrip(",")
    return labels


def parse_prometheus(text: str) -> dict:
    """``{metric_name: {"type": ..., "samples": [(labels, value)]}}``."""
    out = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            out.setdefault(name, {"type": kind, "samples": []})
            continue
        if line.startswith("#"):
            continue
        name_part, value_part = line.rsplit(None, 1)
        if "{" in name_part:
            name, label_text = name_part.split("{", 1)
            assert label_text.endswith("}")
            labels = _parse_labels(label_text[:-1])
        else:
            name, labels = name_part, {}
        value = float("inf") if value_part == "+Inf" else float(value_part)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in out:
                base = name[: -len(suffix)]
                break
        out.setdefault(base, {"type": "untyped", "samples": []})
        out[base]["samples"].append((name, labels, value))
    return out


# ---------------------------------------------------------------------------
# Exposition format.
# ---------------------------------------------------------------------------


class TestPrometheusText:
    def test_counter_gauge_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("colt_hits", help="hits").inc(7, design="colt_sa")
        registry.counter("colt_hits").inc(3, design="colt_fa")
        registry.gauge("colt_depth", help="queue depth").set(2.5)
        parsed = parse_prometheus(prometheus_text(registry.snapshot()))

        assert parsed["colt_hits"]["type"] == "counter"
        samples = {
            labels.get("design"): value
            for _, labels, value in parsed["colt_hits"]["samples"]
        }
        assert samples == {"colt_sa": 7.0, "colt_fa": 3.0}
        assert parsed["colt_depth"]["type"] == "gauge"
        assert parsed["colt_depth"]["samples"][0][2] == 2.5

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("colt_runs", buckets=(1, 4))
        for value in (0.5, 2, 3, 100):
            hist.observe(value)
        parsed = parse_prometheus(prometheus_text(registry.snapshot()))

        assert parsed["colt_runs"]["type"] == "histogram"
        by_name = {}
        for name, labels, value in parsed["colt_runs"]["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        buckets = {
            labels["le"]: value for labels, value in by_name["colt_runs_bucket"]
        }
        # Cumulative: <=1 holds 1, <=4 holds 3, +Inf holds all 4.
        assert buckets == {"1": 1.0, "4": 3.0, "+Inf": 4.0}
        assert by_name["colt_runs_count"][0][1] == 4.0
        assert by_name["colt_runs_sum"][0][1] == pytest.approx(105.5)

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        registry.counter("colt_esc").inc(1, path=nasty)
        text = prometheus_text(registry.snapshot())
        assert "\n" in nasty  # the raw newline must not survive literally
        payload_lines = [
            line for line in text.splitlines() if line.startswith("colt_esc{")
        ]
        assert len(payload_lines) == 1  # newline was escaped, not emitted
        parsed = parse_prometheus(text)
        (_, labels, value), = parsed["colt_esc"]["samples"]
        assert labels["path"] == nasty
        assert value == 1.0

    def test_help_line_escapes_newlines(self):
        registry = MetricsRegistry()
        registry.counter("colt_h", help="line1\nline2").inc(1)
        text = prometheus_text(registry.snapshot())
        assert "# HELP colt_h line1\\nline2" in text

    def test_integral_floats_render_without_decimal(self):
        registry = MetricsRegistry()
        registry.counter("colt_n").inc(3)
        assert "colt_n 3\n" in prometheus_text(registry.snapshot())


# ---------------------------------------------------------------------------
# Histogram merge validation (the silent-misalignment fix).
# ---------------------------------------------------------------------------


class TestHistogramMergeValidation:
    def _snapshot_with_buckets(self, buckets, counts):
        return MetricsSnapshot(instruments={
            "colt_lat": {
                "kind": "histogram", "help": "", "unit": "",
                "series": [{
                    "labels": {}, "count": sum(counts), "sum": 1.0,
                    "buckets": list(buckets), "counts": list(counts),
                }],
            },
        })

    def test_merge_rejects_differing_bucket_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("colt_lat", buckets=(1, 2)).observe(1)
        foreign = self._snapshot_with_buckets((5, 10), [1, 0, 0])
        with pytest.raises(ConfigurationError, match="bucket bounds"):
            registry.merge_snapshot(foreign)

    def test_merge_rejects_foreign_buckets_even_for_new_series(self):
        # The silent-misalignment case the fix targets: the instrument
        # exists with its own bounds, the incoming label set is new, and
        # pre-fix the foreign HistogramState was inserted verbatim.
        registry = MetricsRegistry()
        registry.histogram("colt_lat", buckets=(1, 2)).observe(1, design="a")
        foreign = MetricsSnapshot(instruments={
            "colt_lat": {
                "kind": "histogram", "help": "", "unit": "",
                "series": [{
                    "labels": {"design": "b"}, "count": 1, "sum": 7.0,
                    "buckets": [5, 10], "counts": [0, 1, 0],
                }],
            },
        })
        with pytest.raises(ConfigurationError, match="colt_lat"):
            registry.merge_snapshot(foreign)

    def test_merge_accepts_matching_buckets_and_sums(self):
        registry = MetricsRegistry()
        registry.histogram("colt_lat", buckets=(1, 2)).observe(1)
        incoming = self._snapshot_with_buckets((1, 2), [0, 1, 0])
        registry.merge_snapshot(incoming)
        state = registry.histogram("colt_lat", buckets=(1, 2)).state()
        assert state.count == 2
        assert state.counts == [1, 1, 0]


# ---------------------------------------------------------------------------
# Progress tracker.
# ---------------------------------------------------------------------------


class TestProgressTracker:
    def test_update_and_sections(self):
        tracker = ProgressTracker()
        tracker.update(phase="campaign", jobs=4)
        tracker.update_section("campaign", done=1, total=3)
        tracker.update_section("campaign", done=2)
        snap = tracker.snapshot()
        assert snap["phase"] == "campaign"
        assert snap["campaign"] == {"done": 2, "total": 3}

    def test_snapshot_is_a_deep_copy(self):
        tracker = ProgressTracker()
        tracker.update_section("watchdog", degradation=0)
        snap = tracker.snapshot()
        snap["watchdog"]["degradation"] = 99
        assert tracker.snapshot()["watchdog"]["degradation"] == 0

    def test_default_tracker_singleton_resets(self):
        reset_progress()
        first = get_progress()
        assert get_progress() is first
        reset_progress()
        assert get_progress() is not first


# ---------------------------------------------------------------------------
# HTTP endpoints.
# ---------------------------------------------------------------------------


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return response.status, response.read().decode("utf-8")


class TestTelemetryServer:
    def test_endpoints(self, obs_profile):
        registry = MetricsRegistry()
        registry.counter("colt_pings").inc(5)
        tracker = ProgressTracker()
        tracker.update(phase="testing")
        server = TelemetryServer(0, registry=registry, progress=tracker)
        port = server.start()
        try:
            status, body = _get(port, "/healthz")
            assert (status, body) == (200, "ok\n")

            status, body = _get(port, "/metrics")
            assert status == 200
            parsed = parse_prometheus(body)
            assert parsed["colt_pings"]["samples"][0][2] == 5.0

            status, body = _get(port, "/progress")
            assert status == 200
            progress = json.loads(body)
            assert progress["phase"] == "testing"
            assert progress["telemetry"]["port"] == port
            assert progress["telemetry"]["requests"]["metrics"] == 1

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_stop_is_idempotent_and_releases_port(self, obs_profile):
        server = TelemetryServer(0)
        port = server.start()
        assert server.running and server.port == port
        server.stop()
        server.stop()
        assert not server.running and server.port is None
        with pytest.raises(urllib.error.URLError):
            _get(port, "/healthz")

    def test_port_env_parsing(self, monkeypatch):
        monkeypatch.delenv("COLT_TELEMETRY_PORT", raising=False)
        assert telemetry_port_from_env() is None
        monkeypatch.setenv("COLT_TELEMETRY_PORT", "9177")
        assert telemetry_port_from_env() == 9177
        monkeypatch.setenv("COLT_TELEMETRY_PORT", "nope")
        with pytest.raises(ConfigurationError):
            telemetry_port_from_env()
        monkeypatch.setenv("COLT_TELEMETRY_PORT", "70000")
        with pytest.raises(ConfigurationError):
            telemetry_port_from_env()


# ---------------------------------------------------------------------------
# Served-vs-unserved bit-identity.
# ---------------------------------------------------------------------------


_TINY = ExperimentScale(
    accesses=2_000,
    num_frames=1 << 13,
    footprint_scale=0.2,
    benchmarks=("mcf", "astar"),
)


def _run_tiny_campaign(tmp_path, name, poll_port=None):
    """One fig18 campaign at the tiny scale; returns its table text."""
    manifest = CampaignManifest.fresh(
        tmp_path / name / "manifest.json", ["fig18"], "test-fingerprint"
    )
    runner = ExperimentRunner(jobs=1, store=None)
    campaign = CampaignRunner(
        manifest, runner, _TINY, tables_dir=tmp_path / name / "tables"
    )

    polls = {"metrics": 0, "progress": 0}
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            status, body = _get(poll_port, "/metrics")
            assert status == 200
            parse_prometheus(body)  # must stay parseable mid-run
            polls["metrics"] += 1
            status, body = _get(poll_port, "/progress")
            assert status == 200
            json.loads(body)
            polls["progress"] += 1

    poller = None
    if poll_port is not None:
        poller = threading.Thread(target=hammer, daemon=True)
        poller.start()
    try:
        status = campaign.run()
    finally:
        stop.set()
        if poller is not None:
            poller.join(timeout=10)
    assert status.ok and status.completed == ["fig18"]
    if poll_port is not None:
        assert polls["metrics"] > 0 and polls["progress"] > 0
    return status.tables["fig18"]


class TestServedBitIdentity:
    def test_metrics_polling_does_not_perturb_campaign(
        self, obs_profile, tmp_path
    ):
        get_experiment("fig18")  # fail fast if the id ever changes
        server = TelemetryServer(0)
        port = server.start()
        try:
            served = _run_tiny_campaign(tmp_path, "served", poll_port=port)
        finally:
            server.stop()
        # Fresh obs state for the unserved control run.
        reset_tracing()
        set_registry(None)
        reset_progress()
        unserved = _run_tiny_campaign(tmp_path, "unserved")
        assert served == unserved
