"""Shared fixtures for the test suite.

Everything is small and seeded: kernels boot 2**12-frame machines unless
a test needs more, so the whole suite stays fast while still exercising
real allocation, compaction, and TLB behaviour.
"""

import pytest

from repro.analysis.sanitizers import SANITIZE_ENV
from repro.common.rng import SeedSequencer
from repro.osmem.kernel import Kernel, KernelConfig

#: Test modules that always run with the runtime sanitizers attached:
#: the structural suites, where an invariant break should fail loudly
#: even when no assertion looks at the broken structure directly.
_SANITIZED_MODULES = (
    "test_system_integration",
    "test_mmu",
    "test_buddy",
)


@pytest.fixture(autouse=True)
def _sanitize_structural_suites(request, monkeypatch):
    """Force ``COLT_SANITIZE=1`` for the structural test modules.

    Sanitizers only observe, so enabling them changes no simulated
    behaviour -- it just turns silent corruption into a loud
    SanitizerError with the invariant spelled out.
    """
    if request.module.__name__ in _SANITIZED_MODULES:
        monkeypatch.setenv(SANITIZE_ENV, "1")


@pytest.fixture
def seeds():
    return SeedSequencer(1234)


@pytest.fixture
def small_kernel():
    """A pristine 16MB (4096-frame) kernel, THS + defrag on."""
    return Kernel(KernelConfig(num_frames=4096, seed=99))


@pytest.fixture
def tiny_kernel_no_thp():
    """A 4MB kernel with THS off (tests that need base pages only)."""
    return Kernel(
        KernelConfig(num_frames=1024, ths_enabled=False, seed=7)
    )


@pytest.fixture
def kernel_factory():
    """Factory for kernels with custom configuration overrides."""

    def make(**overrides):
        defaults = dict(num_frames=4096, seed=99)
        defaults.update(overrides)
        return Kernel(KernelConfig(**defaults))

    return make
