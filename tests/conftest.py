"""Shared fixtures for the test suite.

Everything is small and seeded: kernels boot 2**12-frame machines unless
a test needs more, so the whole suite stays fast while still exercising
real allocation, compaction, and TLB behaviour.
"""

import pytest

from repro.common.rng import SeedSequencer
from repro.osmem.kernel import Kernel, KernelConfig


@pytest.fixture
def seeds():
    return SeedSequencer(1234)


@pytest.fixture
def small_kernel():
    """A pristine 16MB (4096-frame) kernel, THS + defrag on."""
    return Kernel(KernelConfig(num_frames=4096, seed=99))


@pytest.fixture
def tiny_kernel_no_thp():
    """A 4MB kernel with THS off (tests that need base pages only)."""
    return Kernel(
        KernelConfig(num_frames=1024, ths_enabled=False, seed=7)
    )


@pytest.fixture
def kernel_factory():
    """Factory for kernels with custom configuration overrides."""

    def make(**overrides):
        defaults = dict(num_frames=4096, seed=99)
        defaults.update(overrides)
        return Kernel(KernelConfig(**defaults))

    return make
