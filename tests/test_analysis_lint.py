"""Tests for the determinism lint: every rule, the pragma, and the repo.

Each rule gets fixtures proving it fires on a violation and stays quiet
on the sanctioned alternative; the final test runs the real linter over
``src`` and demands a clean bill -- the same check CI runs.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    iter_python_files,
    lint_paths,
    lint_source,
    main,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(source, path="sim/module.py"):
    return [d.rule for d in lint_source(source, path)]


class TestRngModuleState:
    def test_import_random_flagged(self):
        assert rules_of("import random\n") == ["rng-module-state"]

    def test_from_random_flagged(self):
        assert rules_of("from random import shuffle\n") == ["rng-module-state"]

    def test_np_random_module_state_flagged(self):
        source = "import numpy as np\nnp.random.seed(3)\n"
        assert rules_of(source) == ["rng-module-state"]

    def test_np_random_aliased_import_flagged(self):
        source = "import numpy\nnumpy.random.shuffle([1])\n"
        assert rules_of(source) == ["rng-module-state"]

    def test_from_numpy_random_flagged(self):
        source = "from numpy.random import default_rng\n"
        assert rules_of(source) == ["rng-module-state"]

    def test_default_rng_allowed_in_rng_module(self):
        source = "from numpy.random import default_rng\n"
        assert rules_of(source, "src/repro/common/rng.py") == []

    def test_generator_type_import_allowed(self):
        source = "from numpy.random import Generator, SeedSequence\n"
        assert rules_of(source) == []

    def test_np_random_generator_annotation_allowed(self):
        source = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator):\n    return rng\n"
        )
        assert rules_of(source) == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules_of("import time\ntime.time()\n") == ["wall-clock"]

    def test_perf_counter_flagged(self):
        assert rules_of("import time\ntime.perf_counter()\n") == ["wall-clock"]

    def test_from_time_import_flagged(self):
        assert rules_of("from time import time\n") == ["wall-clock"]

    def test_datetime_now_flagged(self):
        source = "from datetime import datetime\ndatetime.now()\n"
        assert rules_of(source) == ["wall-clock"]

    def test_datetime_module_path_flagged(self):
        source = "import datetime\ndatetime.datetime.now()\n"
        assert rules_of(source) == ["wall-clock"]

    def test_allow_listed_files_pass(self):
        source = "import time\nt = time.perf_counter()\n"
        assert rules_of(source, "repro/experiments/__main__.py") == []
        assert rules_of(source, "tools/calibrate.py") == []

    def test_time_sleep_not_flagged(self):
        # sleep blocks but does not read the clock into results.
        assert rules_of("import time\ntime.sleep(1)\n") == []


class TestMutableDefault:
    def test_list_literal_flagged(self):
        assert rules_of("def f(x=[]):\n    return x\n") == ["mutable-default"]

    def test_dict_call_flagged(self):
        assert rules_of("def f(x=dict()):\n    return x\n") == [
            "mutable-default"
        ]

    def test_kwonly_default_flagged(self):
        assert rules_of("def f(*, x={}):\n    return x\n") == [
            "mutable-default"
        ]

    def test_none_default_allowed(self):
        assert rules_of("def f(x=None):\n    return x\n") == []

    def test_tuple_default_allowed(self):
        assert rules_of("def f(x=(1, 2)):\n    return x\n") == []


class TestFloatEq:
    def test_float_equality_flagged(self):
        assert rules_of("ok = rate == 0.5\n", "m.py") == ["float-eq"]

    def test_float_inequality_flagged(self):
        assert rules_of("ok = rate != 1.5\n", "m.py") == ["float-eq"]

    def test_negative_float_flagged(self):
        assert rules_of("ok = x == -0.25\n", "m.py") == ["float-eq"]

    def test_int_equality_allowed(self):
        assert rules_of("ok = count == 5\n", "m.py") == []

    def test_float_comparison_operators_allowed(self):
        assert rules_of("ok = rate < 0.5 or rate >= 0.9\n", "m.py") == []


class TestPragma:
    def test_disable_single_rule(self):
        source = "import time\nt = time.time()  # colt-lint: disable=wall-clock\n"
        assert rules_of(source) == []

    def test_disable_all(self):
        source = "x = rate == 0.5  # colt-lint: disable=all\n"
        assert rules_of(source) == []

    def test_disable_wrong_rule_keeps_diagnostic(self):
        source = "x = rate == 0.5  # colt-lint: disable=wall-clock\n"
        assert rules_of(source) == ["float-eq"]


class TestNoPrint:
    LIB = "src/repro/sim/module.py"

    def test_print_in_library_code_flagged(self):
        assert rules_of("print('hi')\n", self.LIB) == ["no-print"]

    def test_main_modules_exempt(self):
        source = "print('usage: ...')\n"
        assert rules_of(source, "src/repro/experiments/__main__.py") == []

    def test_allow_listed_cli_tools_exempt(self):
        source = "print('diagnostic')\n"
        assert rules_of(source, "src/repro/analysis/lint.py") == []
        assert rules_of(source, "src/repro/analysis/determinism.py") == []

    def test_outside_repro_tree_exempt(self):
        assert rules_of("print('x')\n", "tools/helper.py") == []

    def test_pragma_escapes(self):
        source = "print('x')  # colt-lint: disable=no-print\n"
        assert rules_of(source, self.LIB) == []

    def test_method_named_print_allowed(self):
        # Only the builtin is banned; attribute calls are not.
        assert rules_of("writer.print('x')\n", self.LIB) == []


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0

    def test_exit_one_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "rng-module-state" in out and "bad.py:1" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_directory_recursion(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("import random\n")
        files = list(iter_python_files([tmp_path]))
        assert len(files) == 1
        assert len(lint_paths([tmp_path])) == 1

    def test_syntax_error_reported(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        diagnostics = lint_paths([broken])
        assert [d.rule for d in diagnostics] == ["syntax-error"]


class TestRepoIsClean:
    def test_src_lints_clean(self):
        diagnostics = lint_paths([REPO_ROOT / "src"])
        assert diagnostics == [], "\n".join(d.render() for d in diagnostics)

    def test_tools_lint_clean(self):
        diagnostics = lint_paths([REPO_ROOT / "tools"])
        assert diagnostics == [], "\n".join(d.render() for d in diagnostics)

    def test_all_rules_have_fixture_coverage(self):
        # Guard against adding a rule without tests: the rule tuple is
        # what this suite is organised around.
        assert set(RULES) == {
            "rng-module-state",
            "wall-clock",
            "mutable-default",
            "float-eq",
            "no-print",
        }


@pytest.mark.parametrize("rule", RULES)
def test_each_rule_fires_somewhere(rule):
    """Belt and braces: one violating snippet per rule."""
    samples = {
        "rng-module-state": ("import random\n", "sim/module.py"),
        "wall-clock": ("import time\ntime.time()\n", "sim/module.py"),
        "mutable-default": ("def f(x=[]):\n    return x\n", "sim/module.py"),
        "float-eq": ("ok = x == 0.5\n", "sim/module.py"),
        "no-print": ("print('x')\n", "src/repro/sim/module.py"),
    }
    source, path = samples[rule]
    assert rules_of(source, path) == [rule]
