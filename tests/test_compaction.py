"""Tests for the memory-compaction daemon (Figure 3)."""

import pytest

from repro.osmem.kernel import Kernel, KernelConfig


def make_fragmented_kernel(ths=False):
    """A kernel whose free memory alternates with movable allocations."""
    kernel = Kernel(
        KernelConfig(
            num_frames=2048,
            ths_enabled=ths,
            kernel_reserved_fraction=0.0,
        )
    )
    process = kernel.create_process("frag", fault_batch=2)
    # Fill essentially all of memory, then free alternating regions, so
    # free space exists only as scattered 8-page holes.
    vmas = [kernel.malloc(process, 8, populate=True) for _ in range(240)]
    for vma in vmas[::2]:
        kernel.free_vma(process, vma)
    return kernel, process


class TestMigration:
    def test_compaction_grows_largest_free_run(self):
        kernel, _ = make_fragmented_kernel()
        before = kernel.physical.largest_free_run()
        kernel.compaction.run()
        after = kernel.physical.largest_free_run()
        assert after > before

    def test_compaction_preserves_translations(self):
        kernel, process = make_fragmented_kernel()
        snapshot = {
            t.vpn: t.attributes for t in process.iter_mappings()
        }
        kernel.compaction.run()
        for vpn, attrs in snapshot.items():
            translation = process.page_table.lookup(vpn)
            assert translation is not None, f"vpn {vpn} lost"
            assert translation.attributes == attrs
            # The frame must agree with the reverse map.
            assert kernel.physical.backing_vpn_of(translation.pfn) == vpn

    def test_compaction_preserves_frame_accounting(self):
        kernel, _ = make_fragmented_kernel()
        free_before = kernel.physical.free_frames
        kernel.compaction.run()
        assert kernel.physical.free_frames == free_before
        kernel.buddy.check_invariants()

    def test_migrated_pages_move_toward_top(self):
        kernel, process = make_fragmented_kernel()
        kernel.compaction.run()
        # After full compaction, movable pages should occupy higher
        # frames than the largest free run's start.
        runs = kernel.physical.free_runs()
        largest = max(runs, key=lambda r: r.length)
        movable_below = [
            p
            for p in kernel.physical.movable_frames_ascending()
            if p < largest.start
        ]
        # Most movable pages sit above the big free run (a few stragglers
        # are fine: the scanners stop when they meet).
        total_movable = len(list(kernel.physical.movable_frames_ascending()))
        assert len(movable_below) < total_movable / 2


class TestBudgetsAndCursor:
    def test_max_migrations_bounds_work(self):
        kernel, _ = make_fragmented_kernel()
        migrated = kernel.compaction.run(max_migrations=5)
        assert migrated <= 5

    def test_until_free_order_stops_early(self):
        kernel, _ = make_fragmented_kernel()
        kernel.compaction.run(until_free_order=4)
        assert kernel.buddy.can_allocate(4)

    def test_cursor_makes_progress_across_budgeted_runs(self):
        kernel, _ = make_fragmented_kernel()
        first = kernel.compaction.run(max_migrations=3)
        second = kernel.compaction.run(max_migrations=3)
        # Two budgeted runs migrate different pages (cursor advanced), so
        # total migrations accumulate.
        assert kernel.compaction.counters["pages_migrated"] == first + second

    def test_empty_memory_is_a_noop(self):
        kernel = Kernel(
            KernelConfig(num_frames=1024, kernel_reserved_fraction=0.0)
        )
        assert kernel.compaction.run() == 0


class TestPinsAndSuperpages:
    def test_pinned_pages_never_move(self):
        kernel = Kernel(KernelConfig(num_frames=2048, seed=3))
        pinned_before = {
            pfn
            for pfn in range(2048)
            if kernel.physical.is_allocated(pfn)
            and not kernel.physical.is_movable(pfn)
        }
        process = kernel.create_process("p")
        kernel.malloc(process, 300, populate=True, thp_eligible=False)
        kernel.compaction.run()
        for pfn in pinned_before:
            assert kernel.physical.is_allocated(pfn)
            assert not kernel.physical.is_movable(pfn)

    def test_superpages_are_skipped(self):
        kernel = Kernel(
            KernelConfig(num_frames=4096, kernel_reserved_fraction=0.0)
        )
        process = kernel.create_process("p")
        kernel.malloc(process, 600, populate=True)
        assert kernel.thp.counters["huge_faults"] >= 1
        base = process.page_table.superpage_base(
            kernel.thp.active_for(process.pid)[0]
        )
        kernel.compaction.run()
        # The superpage mapping is untouched.
        after = process.page_table.superpage_base(base.vpn)
        assert after is not None
        assert after.pfn == base.pfn
