"""Tests for the same-seed determinism harness."""

import pytest

from repro.analysis.determinism import (
    ALL_DESIGNS,
    check_all_designs,
    check_determinism,
    os_state_digest,
    state_digest,
)
from repro.common.errors import DeterminismError
from repro.core.mmu import CoLTDesign
from repro.osmem.kernel import KernelConfig
from repro.sim.system import SimulationConfig, SystemSimulator


def small_config(**overrides):
    base = dict(
        benchmark="gobmk",
        kernel=KernelConfig(num_frames=2048, seed=5),
        accesses=1500,
        scale=0.25,
        seed=17,
        churn_every=0,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def run_once(config):
    simulator = SystemSimulator(config)
    simulator.prepare()
    simulator.run()
    return simulator


class TestDigests:
    def test_state_digest_is_repeatable(self):
        config = small_config()
        assert state_digest(run_once(config)) == state_digest(run_once(config))

    def test_seed_changes_digest(self):
        a = state_digest(run_once(small_config(seed=17)))
        b = state_digest(run_once(small_config(seed=18)))
        assert a != b

    def test_os_digest_ignores_tlb_design(self):
        a = os_state_digest(run_once(small_config(design=CoLTDesign.BASELINE)))
        b = os_state_digest(run_once(small_config(design=CoLTDesign.COLT_ALL)))
        assert a == b

    def test_full_digest_sees_tlb_design(self):
        a = state_digest(run_once(small_config(design=CoLTDesign.BASELINE)))
        b = state_digest(run_once(small_config(design=CoLTDesign.COLT_ALL)))
        assert a != b


class TestCheckDeterminism:
    def test_returns_common_digest(self):
        config = small_config()
        digest = check_determinism(config, runs=2)
        assert digest == state_digest(run_once(config))

    def test_sanitized_run_same_digest(self):
        # Sanitizers observe; they must not perturb a single bit.
        plain = check_determinism(small_config(sanitize=False), runs=1)
        sanitized = check_determinism(small_config(sanitize=True), runs=1)
        assert plain == sanitized


class TestCheckAllDesigns:
    def test_all_five_designs_deterministic(self):
        digests = check_all_designs(small_config(), runs=2)
        assert sorted(digests) == sorted(d.value for d in ALL_DESIGNS)
        # Different TLB designs must not collapse to one digest.
        assert len(set(digests.values())) > 1

    def test_design_subset(self):
        digests = check_all_designs(
            small_config(),
            designs=(CoLTDesign.BASELINE, CoLTDesign.COLT_SA),
            runs=1,
        )
        assert set(digests) == {"baseline", "colt_sa"}


class TestMismatchDetection:
    def test_cross_design_os_divergence_raises(self, monkeypatch):
        # Simulate a kernel whose evolution leaks TLB-design dependence
        # by making the OS digest vary per call.
        import repro.analysis.determinism as determinism

        fakes = iter(["a" * 64, "b" * 64])
        monkeypatch.setattr(
            determinism, "os_state_digest", lambda sim: next(fakes)
        )
        with pytest.raises(DeterminismError, match="TLB-design-independent"):
            check_all_designs(
                small_config(),
                designs=(CoLTDesign.BASELINE, CoLTDesign.COLT_SA),
                runs=1,
            )

    def test_run_to_run_divergence_raises(self, monkeypatch):
        import repro.analysis.determinism as determinism

        fakes = iter(["a" * 64, "b" * 64])
        monkeypatch.setattr(
            determinism, "state_digest", lambda sim: next(fakes)
        )
        with pytest.raises(DeterminismError, match="hidden nondeterminism"):
            check_determinism(small_config(), runs=2)
