"""Integration tests for the experiment harnesses (tiny scale)."""

import pytest

from repro.common.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.scale import QUICK, ExperimentScale, scale_from_env
from repro.sim.runner import ExperimentRunner

#: A scale small enough for the test suite.
TINY = ExperimentScale(
    accesses=2500,
    num_frames=4096,
    footprint_scale=0.12,
    benchmarks=("gobmk", "povray"),
    seed=5,
)


@pytest.fixture(scope="module")
def runner():
    """Module-scoped runner: experiments share cached simulations."""
    return ExperimentRunner()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "fig7_9", "fig10_12", "fig13_15", "fig16", "fig17",
            "fig18", "fig19", "fig20", "fig21",
            "abl_l2fill", "abl_window", "abl_fasize", "abl_futurework",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")


class TestScales:
    def test_env_scale_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert scale_from_env() == QUICK

    def test_env_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env(TINY) == TINY

    def test_env_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            scale_from_env()


class TestTable1:
    def test_rows_and_formatting(self, runner):
        result = get_experiment("table1").run(TINY, runner)
        assert [r.benchmark for r in result.rows] == ["gobmk", "povray"]
        for row in result.rows:
            assert row.l1_mpmi_ths_on >= 0
            assert len(row.paper) == 4
        table = result.format_table()
        assert "gobmk" in table
        assert "L1on" in table


class TestContiguityFigures:
    def test_cdf_experiment(self, runner):
        result = get_experiment("fig7_9").run(TINY, runner)
        assert result.ths_enabled
        for row in result.rows:
            assert row.average_contiguity >= 1.0
            assert row.cdf_points[1024] == pytest.approx(1.0)
        assert result.average_of_averages >= 1.0
        assert "Contiguity" in result.format_table()

    def test_low_compaction_config(self, runner):
        result = get_experiment("fig13_15").run(TINY, runner)
        assert not result.ths_enabled
        assert not result.defrag_enabled

    def test_memhog_figure(self, runner):
        result = get_experiment("fig16").run(TINY, runner)
        assert result.ths_enabled
        averages = result.averages()
        assert len(averages) == 3
        assert all(a >= 1.0 for a in averages)
        assert "memhog" in result.format_table()


class TestTLBFigures:
    def test_fig18_structure(self, runner):
        result = get_experiment("fig18").run(TINY, runner)
        for row in result.rows:
            assert set(row.l1_eliminated) == {
                "colt_sa", "colt_fa", "colt_all",
            }
        from repro.core.mmu import CoLTDesign

        # Averages are finite numbers.
        assert isinstance(
            result.average("l1", CoLTDesign.COLT_SA), float
        )

    def test_fig19_shift_sweep(self, runner):
        result = get_experiment("fig19").run(TINY, runner)
        assert result.shifts == (1, 2, 3)
        for row in result.rows:
            assert set(row.l1_eliminated) == {1, 2, 3}

    def test_fig20_columns(self, runner):
        result = get_experiment("fig20").run(TINY, runner)
        averages = result.averages()
        assert len(averages) == 3
        # 8-way without CoLT is weaker than 8-way with CoLT (the paper's
        # headline for Figure 20).
        assert averages[2] >= averages[1]

    def test_fig21_includes_perfect_bound(self, runner):
        result = get_experiment("fig21").run(TINY, runner)
        for row in result.rows:
            assert row.improvements["perfect"] >= row.improvements["colt_sa"]
            assert row.improvements["perfect"] >= 0


class TestAblations:
    def test_l2fill_variants(self, runner):
        result = get_experiment("abl_l2fill").run(TINY, runner)
        assert set(result.variant_names) == {
            "fa_with_l2fill", "fa_no_l2fill",
            "all_with_l2fill", "all_no_l2fill",
        }

    def test_window_monotone_on_average(self, runner):
        result = get_experiment("abl_window").run(TINY, runner)
        # A wider window can only find more coalescible translations.
        assert (
            result.average("fa_window_8")
            >= result.average("fa_window_2") - 1e-9
        )

    def test_fasize_variants(self, runner):
        result = get_experiment("abl_fasize").run(TINY, runner)
        assert "fa_16_entries" in result.variant_names
