"""Tests for the kernel facade: faulting, THP, reclaim, invalidations."""

import pytest

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.contiguity import ContiguityReport
from repro.osmem.kernel import Kernel, KernelConfig
from repro.osmem.physical import KERNEL_PID
from repro.osmem.vma import VMAKind


class TestConfig:
    def test_tiny_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelConfig(num_frames=16)

    def test_with_updates(self):
        config = KernelConfig(num_frames=4096)
        updated = config.with_updates(ths_enabled=False)
        assert not updated.ths_enabled
        assert updated.num_frames == 4096


class TestBoot:
    def test_reserved_frames_are_pinned_clusters(self, small_kernel):
        pinned = [
            pfn
            for pfn in range(small_kernel.config.num_frames)
            if small_kernel.physical.owner_of(pfn) == KERNEL_PID
        ]
        expected = int(4096 * small_kernel.config.kernel_reserved_fraction)
        assert len(pinned) == pytest.approx(expected, abs=64)
        for pfn in pinned:
            assert not small_kernel.physical.is_movable(pfn)

    def test_boot_is_deterministic(self):
        a = Kernel(KernelConfig(num_frames=4096, seed=5))
        b = Kernel(KernelConfig(num_frames=4096, seed=5))
        assert a.physical.free_frames == b.physical.free_frames


class TestMallocAndFault:
    def test_populate_maps_whole_extent(self, small_kernel):
        process = small_kernel.create_process("p")
        vma = small_kernel.malloc(process, 100, populate=True)
        for vpn in range(vma.start_vpn, vma.end_vpn):
            assert process.page_table.lookup(vpn) is not None
        assert process.resident_pages == 100

    def test_lazy_malloc_populates_on_touch(self, small_kernel):
        process = small_kernel.create_process("p", fault_batch=4)
        vma = small_kernel.malloc(process, 50, populate=False)
        assert process.resident_pages == 0
        small_kernel.touch(process, vma.start_vpn)
        assert process.resident_pages == 4  # the fault batch

    def test_touch_returns_translation_and_sets_accessed(self, small_kernel):
        from repro.common.types import PageAttributes

        process = small_kernel.create_process("p")
        vma = small_kernel.malloc(process, 10, populate=False)
        translation = small_kernel.touch(process, vma.start_vpn, write=True)
        assert translation.vpn == vma.start_vpn
        refreshed = process.page_table.lookup(vma.start_vpn)
        assert refreshed.attributes & PageAttributes.ACCESSED
        assert refreshed.attributes & PageAttributes.DIRTY

    def test_populate_batch_controls_run_granularity(self, small_kernel):
        process = small_kernel.create_process("p")
        vma = small_kernel.malloc(
            process, 64, populate=True, populate_batch=4, thp_eligible=False
        )
        report = ContiguityReport.from_process(process)
        # On a pristine kernel each batch is contiguous; batches also
        # concatenate, so runs are multiples of the batch size.
        for run in report.base_page_runs:
            assert run.length % 4 == 0 or run.length == 64

    def test_fault_on_unmapped_address_raises(self, small_kernel):
        from repro.common.errors import PageFaultError

        process = small_kernel.create_process("p")
        with pytest.raises(PageFaultError):
            small_kernel.touch(process, 424242)

    def test_contiguity_emerges_on_pristine_kernel(self, tiny_kernel_no_thp):
        process = tiny_kernel_no_thp.create_process("p")
        tiny_kernel_no_thp.malloc(process, 64, populate=True)
        report = ContiguityReport.from_process(process)
        assert report.average_contiguity > 16


class TestTHP:
    def test_thp_maps_superpage_on_pristine_kernel(self, kernel_factory):
        kernel = kernel_factory(num_frames=4096, ths_enabled=True)
        process = kernel.create_process("p")
        kernel.malloc(process, 1024, populate=True)
        assert kernel.thp.counters["huge_faults"] >= 1
        report = ContiguityReport.from_process(process)
        assert report.superpage_pages >= 512

    def test_ths_off_never_maps_superpages(self, kernel_factory):
        kernel = kernel_factory(num_frames=4096, ths_enabled=False)
        process = kernel.create_process("p")
        kernel.malloc(process, 1024, populate=True)
        assert kernel.thp.counters["huge_faults"] == 0

    def test_file_backed_never_thp(self, small_kernel):
        process = small_kernel.create_process("p")
        small_kernel.malloc(
            process, 1024, populate=True, kind=VMAKind.FILE_BACKED
        )
        assert small_kernel.thp.counters["huge_faults"] == 0

    def test_thp_ineligible_region_uses_base_pages(self, small_kernel):
        process = small_kernel.create_process("p")
        small_kernel.malloc(process, 1024, populate=True, thp_eligible=False)
        assert small_kernel.thp.counters["huge_faults"] == 0

    def test_superpage_frames_are_aligned(self, small_kernel):
        process = small_kernel.create_process("p")
        small_kernel.malloc(process, 600, populate=True)
        for translation in process.iter_mappings():
            if translation.is_superpage:
                assert translation.pfn % 512 == 0


class TestFreeing:
    def test_free_vma_returns_frames(self, small_kernel):
        process = small_kernel.create_process("p")
        free_before = small_kernel.physical.free_frames
        vma = small_kernel.malloc(process, 200, populate=True)
        small_kernel.free_vma(process, vma)
        assert small_kernel.physical.free_frames == free_before
        assert process.resident_pages == 0

    def test_partial_unpopulate_splits_superpage(self, small_kernel):
        process = small_kernel.create_process("p")
        vma = small_kernel.malloc(process, 1024, populate=True)
        if small_kernel.thp.counters["huge_faults"] == 0:
            pytest.skip("no superpage created on this layout")
        chunk = small_kernel.thp.active_for(process.pid)[0]
        small_kernel.unpopulate_range(process, chunk, 16)
        # Remaining pages of the chunk survive as base pages.
        survivor = process.page_table.lookup(chunk + 100)
        assert survivor is not None
        assert not survivor.is_superpage

    def test_exit_process_releases_everything(self, small_kernel):
        free_before = small_kernel.physical.free_frames
        process = small_kernel.create_process("p")
        small_kernel.malloc(process, 700, populate=True)
        small_kernel.exit_process(process)
        # Page-table pool blocks stay with the kernel; data frames return.
        leaked = free_before - small_kernel.physical.free_frames
        assert leaked <= 2 * (1 << small_kernel.config.table_pool_order)
        assert process.pid not in [
            p.pid for p in small_kernel.processes()
        ]


class TestReclaimAndPressure:
    def test_reclaim_steals_from_victims(self, kernel_factory):
        kernel = kernel_factory(num_frames=2048, ths_enabled=False)
        victim = kernel.create_process("victim")
        kernel.malloc(victim, 1400, populate=True)
        kernel.register_reclaim_victim(victim)
        hungry = kernel.create_process("hungry")
        kernel.malloc(hungry, 700, populate=True)  # forces reclaim
        assert kernel.counters["reclaimed_pages"] > 0
        assert victim.resident_pages < 1400

    def test_oom_without_victims_raises(self, kernel_factory):
        kernel = kernel_factory(num_frames=2048, ths_enabled=False)
        process = kernel.create_process("p")
        with pytest.raises(OutOfMemoryError):
            kernel.malloc(process, 4096, populate=True)


class TestInvalidationListeners:
    def test_unmap_fires_listener(self, small_kernel):
        events = []
        small_kernel.add_invalidation_listener(
            lambda pid, vpn, count: events.append((pid, vpn, count))
        )
        process = small_kernel.create_process("p")
        vma = small_kernel.malloc(process, 8, populate=True)
        small_kernel.unpopulate_range(process, vma.start_vpn, 8)
        assert len(events) == 8
        assert all(pid == process.pid for pid, _, _ in events)

    def test_compaction_migration_fires_listener(self, kernel_factory):
        kernel = kernel_factory(num_frames=2048, ths_enabled=False)
        events = []
        kernel.add_invalidation_listener(
            lambda pid, vpn, count: events.append((pid, vpn, count))
        )
        process = kernel.create_process("p")
        kernel.malloc(process, 64, populate=True)
        migrated = kernel.compaction.run()
        assert len([e for e in events if e[0] == process.pid]) <= migrated + 1
        if migrated:
            assert events  # at least one shootdown fired
