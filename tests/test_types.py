"""Tests for the core value types (translations, runs, attributes)."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import (
    ContiguityRun,
    MemoryAccess,
    PageAttributes,
    Translation,
    WalkResult,
)


class TestPageAttributes:
    def test_default_user_attributes(self):
        attrs = PageAttributes.default_user()
        assert attrs & PageAttributes.PRESENT
        assert attrs & PageAttributes.WRITABLE
        assert attrs & PageAttributes.USER

    def test_coalescing_key_ignores_accessed_dirty(self):
        base = PageAttributes.default_user()
        touched = base | PageAttributes.ACCESSED | PageAttributes.DIRTY
        assert base.coalescing_key() == touched.coalescing_key()

    def test_coalescing_key_distinguishes_protection(self):
        writable = PageAttributes.PRESENT | PageAttributes.WRITABLE
        readonly = PageAttributes.PRESENT
        assert writable.coalescing_key() != readonly.coalescing_key()


class TestTranslation:
    def test_addresses(self):
        t = Translation(vpn=3, pfn=10)
        assert t.virtual_address == 3 * PAGE_SIZE
        assert t.physical_address == 10 * PAGE_SIZE

    def test_negative_page_numbers_rejected(self):
        with pytest.raises(ValueError):
            Translation(vpn=-1, pfn=0)
        with pytest.raises(ValueError):
            Translation(vpn=0, pfn=-1)

    def test_contiguity_requires_both_spaces(self):
        a = Translation(vpn=1, pfn=50)
        assert a.is_contiguous_with(Translation(vpn=2, pfn=51))
        # Virtual-only contiguity does not count (Section 3.1).
        assert not a.is_contiguous_with(Translation(vpn=2, pfn=60))
        # Physical-only contiguity does not count either.
        assert not a.is_contiguous_with(Translation(vpn=5, pfn=51))

    def test_contiguity_requires_matching_attributes(self):
        a = Translation(1, 50, PageAttributes.PRESENT | PageAttributes.WRITABLE)
        b = Translation(2, 51, PageAttributes.PRESENT)
        assert not a.is_contiguous_with(b)

    def test_contiguity_tolerates_accessed_dirty_difference(self):
        base = PageAttributes.default_user()
        a = Translation(1, 50, base)
        b = Translation(2, 51, base | PageAttributes.DIRTY)
        assert a.is_contiguous_with(b)

    def test_superpages_never_chain(self):
        a = Translation(0, 0, is_superpage=True)
        b = Translation(1, 1)
        assert not a.is_contiguous_with(b)


class TestContiguityRun:
    def test_run_bounds(self):
        run = ContiguityRun(start_vpn=10, start_pfn=100, length=4)
        assert run.end_vpn == 14
        assert run.contains_vpn(10)
        assert run.contains_vpn(13)
        assert not run.contains_vpn(14)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            ContiguityRun(0, 0, 0)


class TestMemoryAccess:
    def test_virtual_address_combines_page_and_offset(self):
        access = MemoryAccess(vpn=2, offset=128)
        assert access.virtual_address == 2 * PAGE_SIZE + 128


class TestWalkResult:
    def test_neighbours_excludes_requested(self):
        requested = Translation(8, 80)
        line = (
            Translation(8, 80),
            Translation(9, 81),
            Translation(10, 82),
        )
        walk = WalkResult(requested, line)
        neighbour_vpns = {t.vpn for t in walk.neighbours()}
        assert neighbour_vpns == {9, 10}
