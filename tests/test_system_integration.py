"""Integration tests: the full-system simulator end to end."""

import pytest

from repro.core.mmu import CoLTDesign
from repro.osmem.kernel import KernelConfig
from repro.osmem.memhog import SIMULATION_AGING
from repro.sim.runner import ExperimentRunner
from repro.sim.system import SimulationConfig, SystemSimulator, simulate


def small_config(**overrides):
    defaults = dict(
        benchmark="gobmk",
        design=CoLTDesign.BASELINE,
        kernel=KernelConfig(num_frames=4096),
        accesses=4000,
        scale=0.25,
        seed=11,
        aging=SIMULATION_AGING,
        churn_every=0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(Exception):
            small_config(accesses=0)
        with pytest.raises(Exception):
            small_config(memhog_fraction=1.5)

    def test_config_is_hashable_for_caching(self):
        a = small_config()
        b = small_config()
        assert a == b
        assert hash(a) == hash(b)
        assert a != small_config(seed=12)


class TestEndToEnd:
    def test_simulate_produces_consistent_result(self):
        result = simulate(small_config())
        assert result.accesses == 4000
        assert result.l1_misses >= result.l2_misses
        assert result.l1_misses == result.mmu_counters["l1_misses"]
        assert result.performance.total_cycles > 0
        assert result.trace_unique_pages > 0
        assert "gobmk" in result.summary()

    def test_determinism(self):
        a = simulate(small_config())
        b = simulate(small_config())
        assert a.l1_misses == b.l1_misses
        assert a.l2_misses == b.l2_misses
        assert a.average_contiguity == b.average_contiguity

    def test_os_state_identical_across_designs(self):
        """The paper's apples-to-apples property: the TLB design must not
        perturb the OS, so contiguity and kernel counters match exactly
        between a baseline and a CoLT run of the same scenario."""
        base = simulate(small_config(design=CoLTDesign.BASELINE))
        colt = simulate(small_config(design=CoLTDesign.COLT_ALL))
        assert base.average_contiguity == colt.average_contiguity
        assert (
            base.kernel_counters["pages_faulted"]
            == colt.kernel_counters["pages_faulted"]
        )

    def test_perfect_design_has_zero_misses(self):
        result = simulate(small_config(design=CoLTDesign.PERFECT))
        assert result.l1_misses == 0
        assert result.l2_misses == 0

    def test_memhog_run(self):
        result = simulate(
            small_config(memhog_fraction=0.25, accesses=2000)
        )
        assert result.kernel_counters["pages_faulted"] > 0

    def test_every_benchmark_profile_simulates(self):
        from repro.workloads.benchmarks import TABLE1_ORDER

        for name in TABLE1_ORDER:
            result = simulate(
                small_config(benchmark=name, accesses=1500, scale=0.1)
            )
            assert result.accesses == 1500, name


class TestRunner:
    def test_runner_caches_identical_configs(self):
        runner = ExperimentRunner()
        config = small_config()
        first = runner.run(config)
        second = runner.run(config)
        assert first is second

    def test_eliminations_rows(self):
        runner = ExperimentRunner()
        rows = runner.eliminations(small_config())
        assert [row.design for row in rows] == [
            "colt_sa", "colt_fa", "colt_all",
        ]
        for row in rows:
            assert row.benchmark == "gobmk"

    def test_performance_rows_include_perfect(self):
        runner = ExperimentRunner()
        rows = runner.performance_improvements(small_config())
        designs = {row.design for row in rows}
        assert "perfect" in designs
        perfect = next(r for r in rows if r.design == "perfect")
        assert perfect.improvement_pct >= 0


class TestShootdownPlumbing:
    def test_mmu_sees_kernel_invalidations(self):
        simulator = SystemSimulator(
            small_config(memhog_fraction=0.4, accesses=3000)
        )
        simulator.prepare()
        result = simulator.run()
        # Under heavy memhog pressure the kernel splits/migrates/reclaims;
        # any of those events against the benchmark must reach the MMU.
        # (This asserts the plumbing exists; event counts vary by seed.)
        assert result.mmu_counters["invalidations"] >= 0
