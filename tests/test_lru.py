"""Unit tests for the LRU tracker used by every TLB and cache."""

import pytest

from repro.common.lru import LRUTracker


class TestBasics:
    def test_empty_tracker_has_zero_length(self):
        assert len(LRUTracker(4)) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUTracker(0)

    def test_touch_inserts_new_key(self):
        lru = LRUTracker(2)
        lru.touch("a")
        assert "a" in lru
        assert len(lru) == 1

    def test_contains_reports_absent_key(self):
        lru = LRUTracker(2)
        assert "a" not in lru

    def test_is_full(self):
        lru = LRUTracker(2)
        assert not lru.is_full
        lru.touch("a")
        lru.touch("b")
        assert lru.is_full


class TestRecencyOrder:
    def test_victim_is_least_recently_used(self):
        lru = LRUTracker(3)
        for key in ("a", "b", "c"):
            lru.touch(key)
        assert lru.victim() == "a"

    def test_touch_promotes_existing_key(self):
        lru = LRUTracker(3)
        for key in ("a", "b", "c"):
            lru.touch(key)
        lru.touch("a")
        assert lru.victim() == "b"

    def test_mru_reports_most_recent(self):
        lru = LRUTracker(3)
        lru.touch("a")
        lru.touch("b")
        assert lru.mru() == "b"
        lru.touch("a")
        assert lru.mru() == "a"

    def test_mru_of_empty_is_none(self):
        assert LRUTracker(2).mru() is None

    def test_iteration_is_lru_to_mru(self):
        lru = LRUTracker(3)
        for key in ("x", "y", "z"):
            lru.touch(key)
        lru.touch("x")
        assert list(lru) == ["y", "z", "x"]


class TestEviction:
    def test_evict_removes_and_returns_lru(self):
        lru = LRUTracker(2)
        lru.touch("a")
        lru.touch("b")
        assert lru.evict() == "a"
        assert "a" not in lru
        assert len(lru) == 1

    def test_insert_into_full_tracker_raises(self):
        lru = LRUTracker(1)
        lru.touch("a")
        with pytest.raises(ValueError):
            lru.touch("b")

    def test_touch_existing_key_in_full_tracker_is_fine(self):
        lru = LRUTracker(1)
        lru.touch("a")
        lru.touch("a")  # no eviction needed
        assert lru.victim() == "a"

    def test_evict_empty_raises(self):
        with pytest.raises(ValueError):
            LRUTracker(2).evict()

    def test_victim_empty_raises(self):
        with pytest.raises(ValueError):
            LRUTracker(2).victim()


class TestRemoval:
    def test_remove_existing_key(self):
        lru = LRUTracker(2)
        lru.touch("a")
        lru.remove("a")
        assert "a" not in lru

    def test_remove_missing_key_raises(self):
        with pytest.raises(KeyError):
            LRUTracker(2).remove("ghost")

    def test_discard_missing_key_is_silent(self):
        LRUTracker(2).discard("ghost")

    def test_removal_frees_capacity(self):
        lru = LRUTracker(1)
        lru.touch("a")
        lru.remove("a")
        lru.touch("b")
        assert "b" in lru

    def test_clear(self):
        lru = LRUTracker(3)
        lru.touch("a")
        lru.touch("b")
        lru.clear()
        assert len(lru) == 0
        assert "a" not in lru
