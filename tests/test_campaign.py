"""Campaigns: atomic writes, the WAL journal, shutdown, watchdogs.

The invariants pinned here are the robustness contract of
``repro.sim.campaign`` / ``repro.sim.watchdog`` /
``repro.common.atomicio``:

* an artifact write killed at any point leaves the old file intact;
* the journal is consistent at every kill point (write-ahead: mark
  -running precedes work, mark-done follows it);
* an interrupted campaign resumed from its journal completes
  bit-identically to an uninterrupted one;
* a stall fires a stack dump and requeues through the ordinary retry
  machinery; memory pressure climbs the degradation ladder.
"""

import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.common.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.common.errors import (
    CampaignError,
    InjectedFaultError,
    ShutdownRequested,
    StallError,
)
from repro.obs.trace import PROFILE_ENV, TRACE_ENV, reset_tracing
from repro.obs.registry import set_registry
from repro.sim.campaign import (
    CAMPAIGN_VERSION,
    SHUTDOWN_EXIT_CODE,
    STATUS_DONE,
    STATUS_PENDING,
    STATUS_RUNNING,
    CampaignManifest,
    CampaignRunner,
    ShutdownCoordinator,
    campaign_fingerprint,
)
from repro.sim.faults import FaultPlan
from repro.sim.resilience import ResilientExecutor, RetryPolicy, TaskSpec
from repro.sim.watchdog import (
    DEGRADE_ABORT,
    DEGRADE_NO_PREFETCH,
    DEGRADE_NONE,
    DEGRADE_SHRINK_POOL,
    Watchdog,
)


@pytest.fixture
def obs_off(monkeypatch):
    monkeypatch.delenv(TRACE_ENV, raising=False)
    monkeypatch.delenv(PROFILE_ENV, raising=False)
    reset_tracing()
    set_registry(None)
    yield
    reset_tracing()
    set_registry(None)


# ---------------------------------------------------------------------------
# Atomic writes.
# ---------------------------------------------------------------------------


class TestAtomicIO:
    def test_write_and_overwrite(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"a": 1})
        assert path.read_text() == '{"a": 1}\n'
        atomic_write_text(path, "plain\n")
        assert path.read_text() == "plain\n"
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_kill_between_write_and_replace_keeps_old_file(
        self, tmp_path, monkeypatch
    ):
        """Simulate dying mid-write: the visible file never changes."""
        path = tmp_path / "artifact.json"
        atomic_write_bytes(path, b"old and complete")

        def exploding_replace(src, dst):
            raise OSError("killed between write and replace")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"new but doomed")
        monkeypatch.undo()
        assert path.read_bytes() == b"old and complete"
        # The raising writer cleaned its temp file up.
        assert list(tmp_path.iterdir()) == [path]

    def test_failed_first_write_leaves_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.json"
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            atomic_write_text(path, "never lands")
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_nonexistent_directory_raises_untouched(self, tmp_path):
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "no" / "dir" / "f.txt", "x")


# ---------------------------------------------------------------------------
# The write-ahead journal.
# ---------------------------------------------------------------------------


class TestCampaignManifest:
    def test_fresh_writes_all_pending(self, tmp_path):
        path = tmp_path / "campaign" / "manifest.json"
        manifest = CampaignManifest.fresh(path, ["a", "b"], "f" * 64)
        assert path.exists()
        assert manifest.pending_ids() == ["a", "b"]
        assert not manifest.is_complete()
        loaded = CampaignManifest.load(path)
        assert loaded.experiment_ids == ("a", "b")
        assert loaded.fingerprint == "f" * 64

    def test_transitions_journal_before_and_after(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = CampaignManifest.fresh(path, ["a", "b"], "fp")
        manifest.mark_running("a")
        # Kill point: reloading now must show 'a' in flight.
        assert CampaignManifest.load(path).status("a") == STATUS_RUNNING
        manifest.mark_done("a")
        manifest.mark_failed("b", "stack overflow of ambition")
        reloaded = CampaignManifest.load(path)
        assert reloaded.status("a") == STATUS_DONE
        assert reloaded.entries["b"]["error"].startswith("stack overflow")
        # failed entries are retried on resume; done ones are not.
        assert reloaded.pending_ids() == ["b"]
        assert reloaded.entries["a"]["attempts"] == 1

    def test_demote_running_requeues_in_flight_work(self, tmp_path):
        manifest = CampaignManifest.fresh(
            tmp_path / "m.json", ["a", "b", "c"], "fp"
        )
        manifest.mark_running("a")
        manifest.mark_done("a")
        manifest.mark_running("b")
        # The process dies here; resume repairs the journal.
        resumed = CampaignManifest.load(tmp_path / "m.json")
        assert resumed.demote_running() == ["b"]
        assert resumed.status("b") == STATUS_PENDING
        assert resumed.status("a") == STATUS_DONE
        assert resumed.demote_running() == []

    def test_load_rejects_missing_and_garbage(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign journal"):
            CampaignManifest.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        with pytest.raises(CampaignError, match="unreadable"):
            CampaignManifest.load(bad)

    def test_load_rejects_version_skew(self, tmp_path):
        path = tmp_path / "m.json"
        CampaignManifest.fresh(path, ["a"], "fp")
        text = path.read_text().replace(
            f'"version": {CAMPAIGN_VERSION}', '"version": 999'
        )
        path.write_text(text)
        with pytest.raises(CampaignError, match="version"):
            CampaignManifest.load(path)

    def test_load_rejects_unknown_status(self, tmp_path):
        path = tmp_path / "m.json"
        CampaignManifest.fresh(path, ["a"], "fp")
        path.write_text(
            path.read_text().replace('"pending"', '"exploded"')
        )
        with pytest.raises(CampaignError, match="unknown status"):
            CampaignManifest.load(path)

    def test_fingerprint_covers_scale_ids_and_constants(self):
        @dataclass(frozen=True)
        class FakeScale:
            accesses: int = 1000

        base = campaign_fingerprint(FakeScale(), ["a", "b"])
        assert base == campaign_fingerprint(FakeScale(), ["a", "b"])
        assert base != campaign_fingerprint(FakeScale(2000), ["a", "b"])
        assert base != campaign_fingerprint(FakeScale(), ["a"])


# ---------------------------------------------------------------------------
# Shutdown coordinator.
# ---------------------------------------------------------------------------


class TestShutdownCoordinator:
    def test_programmatic_request(self):
        shutdown = ShutdownCoordinator()
        assert not shutdown.requested
        shutdown.check()  # no-op before a request
        shutdown.request("TEST")
        assert shutdown.requested
        with pytest.raises(ShutdownRequested) as exc_info:
            shutdown.check()
        assert exc_info.value.signal_name == "TEST"

    def test_real_signal_sets_flag_and_restore_uninstalls(self):
        shutdown = ShutdownCoordinator()
        with shutdown:
            os.kill(os.getpid(), signal.SIGINT)
            # Delivery is synchronous for a self-signal on the main
            # thread once any bytecode runs.
            for _ in range(100):
                if shutdown.requested:
                    break
                time.sleep(0.01)
            assert shutdown.requested
            assert shutdown.signal_name == "SIGINT"
        # Restored: a further SIGINT raises KeyboardInterrupt as usual.
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGINT)
            time.sleep(0.2)

    def test_exit_code_is_distinct(self):
        assert SHUTDOWN_EXIT_CODE == 75
        assert SHUTDOWN_EXIT_CODE not in (0, 1, 2)
        assert SHUTDOWN_EXIT_CODE != 128 + signal.SIGINT
        assert SHUTDOWN_EXIT_CODE != 128 + signal.SIGTERM


# ---------------------------------------------------------------------------
# Watchdog: stalls, dumps, and the memory ladder.
# ---------------------------------------------------------------------------


class TestWatchdog:
    def test_from_env_none_when_unconfigured(self, monkeypatch):
        monkeypatch.delenv("COLT_STALL_TIMEOUT", raising=False)
        monkeypatch.delenv("COLT_MEM_BUDGET", raising=False)
        assert Watchdog.from_env() is None
        monkeypatch.setenv("COLT_STALL_TIMEOUT", "30")
        dog = Watchdog.from_env()
        assert dog is not None and dog.stall_timeout_s == 30.0
        monkeypatch.setenv("COLT_STALL_TIMEOUT", "0")
        assert Watchdog.from_env() is None

    def test_stall_dumps_stacks_and_fires_once(self, tmp_path, obs_off):
        dog = Watchdog(
            stall_timeout_s=0.05, dump_dir=tmp_path, poll_interval_s=0.02
        )
        with dog:
            dog.begin_work()
            deadline = time.monotonic() + 5.0
            while not dog.consume_stall():
                assert time.monotonic() < deadline, "stall never fired"
                time.sleep(0.01)
            dog.end_work()
        assert dog.counters.as_dict()["stalls"] >= 1
        assert dog.last_dump_path is not None
        dump = dog.last_dump_path.read_text()
        assert "colt watchdog: stall" in dump
        # faulthandler wrote actual stack frames, not just the header.
        assert "File " in dump or "Thread " in dump

    def test_no_stall_when_idle_or_heartbeating(self, tmp_path, obs_off):
        dog = Watchdog(
            stall_timeout_s=0.08, dump_dir=tmp_path, poll_interval_s=0.02
        )
        with dog:
            time.sleep(0.2)          # idle: no work outstanding
            assert not dog.consume_stall()
            dog.begin_work()
            for _ in range(10):      # busy but beating
                dog.heartbeat()
                time.sleep(0.02)
            assert not dog.consume_stall()
            dog.end_work()

    def test_memory_ladder_climbs_to_abort(self, tmp_path, obs_off):
        rss = {"value": 10 * 1024 * 1024}
        dog = Watchdog(
            mem_budget_bytes=5 * 1024 * 1024,
            dump_dir=tmp_path,
            poll_interval_s=0.02,
            rss_fn=lambda: rss["value"],
        )
        assert dog.degradation == DEGRADE_NONE
        with dog:
            deadline = time.monotonic() + 5.0
            while not dog.should_abort():
                assert time.monotonic() < deadline, "ladder never topped"
                time.sleep(0.01)
        counts = dog.counters.as_dict()
        assert counts["pool_shrinks"] == 1
        assert counts["prefetch_disables"] == 1
        assert counts["budget_aborts"] == 1
        assert counts["mem_breaches"] >= 3
        assert dog.degradation == DEGRADE_ABORT

    def test_under_budget_stays_on_the_ground(self, tmp_path, obs_off):
        dog = Watchdog(
            mem_budget_bytes=100 * 1024 * 1024,
            dump_dir=tmp_path,
            poll_interval_s=0.02,
            rss_fn=lambda: 1024,
        )
        with dog:
            time.sleep(0.1)
        assert dog.degradation == DEGRADE_NONE
        assert not dog.should_abort()
        assert DEGRADE_SHRINK_POOL < DEGRADE_NO_PREFETCH < DEGRADE_ABORT


def _sleepy(seconds, attempt):
    # Attempt 0 sleeps long enough to stall; the retry returns fast.
    if attempt == 0:
        time.sleep(seconds)
    return attempt


class TestExecutorIntegration:
    def test_stall_requeues_through_retry_machinery(self, tmp_path,
                                                    obs_off):
        dog = Watchdog(
            stall_timeout_s=0.15, dump_dir=tmp_path, poll_interval_s=0.03
        )
        policy = RetryPolicy(max_retries=2, backoff_s=0.0)
        task = TaskSpec(
            fn=_sleepy, args=(20.0,), site="capture", index=0,
            context={"kind": "stall-victim"},
        )
        with dog, ResilientExecutor(
            jobs=2, policy=policy, watchdog=dog
        ) as executor:
            results = [r for _, r in executor.run([task])]
        # The stalled attempt 0 was abandoned; the retry (attempt 1)
        # returned immediately.
        assert results == [1]
        assert executor.counters.as_dict()["retries"] >= 1
        assert dog.counters.as_dict()["stalls"] >= 1
        assert dog.last_dump_path is not None

    def test_shutdown_interrupts_wave_and_raises(self, obs_off):
        shutdown = ShutdownCoordinator()
        tasks = [
            TaskSpec(fn=_sleepy, args=(0.0,), site="capture", index=i,
                     context={"i": i})
            for i in range(3)
        ]
        shutdown.request("TEST")
        with ResilientExecutor(jobs=1, shutdown=shutdown) as executor:
            with pytest.raises(ShutdownRequested):
                list(executor.run(tasks))


# ---------------------------------------------------------------------------
# CampaignRunner over a stub registry (fast, deterministic).
# ---------------------------------------------------------------------------


class _StubResult:
    def __init__(self, text):
        self._text = text

    def format_table(self):
        return self._text


class _StubExperiment:
    def __init__(self, exp_id, hook=None):
        self.id = exp_id
        self.runs = 0
        self._hook = hook

    def run(self, scale, runner):
        self.runs += 1
        if self._hook is not None:
            self._hook(self)
        return _StubResult(f"table of {self.id}")


@pytest.fixture
def stub_registry(monkeypatch):
    experiments = {}

    def get_experiment(exp_id):
        return experiments[exp_id]

    monkeypatch.setattr(
        "repro.experiments.registry.get_experiment", get_experiment
    )
    return experiments


class TestCampaignRunner:
    def _campaign(self, tmp_path, ids, **kwargs):
        manifest = CampaignManifest.fresh(
            tmp_path / "manifest.json", ids, "fp"
        )
        return CampaignRunner(
            manifest, runner=None, scale=None,
            tables_dir=tmp_path / "tables", **kwargs
        )

    def test_clean_run_journals_everything_done(self, tmp_path, obs_off,
                                                stub_registry):
        stub_registry["a"] = _StubExperiment("a")
        stub_registry["b"] = _StubExperiment("b")
        campaign = self._campaign(tmp_path, ["a", "b"])
        status = campaign.run()
        assert status.ok
        assert status.completed == ["a", "b"]
        assert campaign.manifest.is_complete()
        assert (tmp_path / "tables" / "a.txt").read_text() == \
            "table of a\n"

    def test_resume_skips_done_and_reloads_tables(self, tmp_path, obs_off,
                                                  stub_registry):
        stub_registry["a"] = _StubExperiment("a")
        stub_registry["b"] = _StubExperiment("b")
        first = self._campaign(tmp_path, ["a", "b"])
        first.run()
        # Second run over the same journal: nothing recomputes.
        resumed = CampaignManifest.load(tmp_path / "manifest.json")
        campaign = CampaignRunner(
            resumed, runner=None, scale=None,
            tables_dir=tmp_path / "tables",
        )
        status = campaign.run()
        assert status.skipped == ["a", "b"]
        assert status.completed == []
        assert stub_registry["a"].runs == 1
        assert status.tables["a"] == "table of a\n"

    def test_shutdown_mid_campaign_requeues_in_flight(self, tmp_path,
                                                      obs_off,
                                                      stub_registry):
        shutdown = ShutdownCoordinator()

        # The second experiment sees the signal while *running* (the
        # executor raises, exactly like a real mid-batch SIGINT): it
        # must be journaled back to pending, not lost or marked done.
        def interrupt(exp):
            shutdown.request("SIGINT")
            shutdown.check()

        stub_registry["a"] = _StubExperiment("a")
        stub_registry["b"] = _StubExperiment("b", hook=interrupt)
        stub_registry["c"] = _StubExperiment("c")
        campaign = self._campaign(
            tmp_path, ["a", "b", "c"], shutdown=shutdown
        )
        status = campaign.run()
        assert status.interrupted == "SIGINT"
        assert status.completed == ["a"]
        journal = CampaignManifest.load(tmp_path / "manifest.json")
        assert journal.status("a") == STATUS_DONE
        assert journal.status("b") == STATUS_PENDING
        assert journal.status("c") == STATUS_PENDING
        assert stub_registry["c"].runs == 0

        # Resume: only b and c run; the journal completes.
        shutdown2 = ShutdownCoordinator()
        stub_registry["b"]._hook = None
        campaign2 = CampaignRunner(
            journal, runner=None, scale=None,
            tables_dir=tmp_path / "tables", shutdown=shutdown2,
        )
        status2 = campaign2.run()
        assert status2.ok
        assert status2.completed == ["b", "c"]
        assert status2.skipped == ["a"]
        assert stub_registry["a"].runs == 1
        assert CampaignManifest.load(
            tmp_path / "manifest.json"
        ).is_complete()

    def test_campaign_fault_leaves_running_entry_for_resume(
        self, tmp_path, obs_off, stub_registry
    ):
        """``crash@campaign`` kills between mark-running and mark-done;
        the journal must say 'running' (rerun me), never 'done'."""
        stub_registry["a"] = _StubExperiment("a")
        stub_registry["b"] = _StubExperiment("b")
        plan = FaultPlan.parse("crash@campaign:1")
        campaign = self._campaign(tmp_path, ["a", "b"], faults=plan)
        with pytest.raises(InjectedFaultError):
            campaign.run()
        journal = CampaignManifest.load(tmp_path / "manifest.json")
        assert journal.status("a") == STATUS_DONE
        assert journal.status("b") == STATUS_RUNNING

        # Resume demotes the orphaned entry and finishes the campaign.
        assert journal.demote_running() == ["b"]
        campaign2 = CampaignRunner(
            journal, runner=None, scale=None,
            tables_dir=tmp_path / "tables",
        )
        status = campaign2.run()
        assert status.ok and status.completed == ["b"]
        assert journal.is_complete()
