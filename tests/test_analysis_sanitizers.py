"""Tests for the runtime sanitizers: each must fire on real corruption.

Every test corrupts a live structure the way a genuine bug would --
overlapping coalesced ranges, a broken buddy free list, a mismatched
PTE -- and asserts the responsible sanitizer raises ``SanitizerError``
with the invariant named. Clean-path tests assert sanitized runs behave
identically to unsanitized ones.
"""

import pytest

from repro.analysis.sanitizers import (
    BuddySanitizer,
    PageTableSanitizer,
    TLBSanitizer,
    resolve_sanitize,
)
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mmu_cache import MMUCache
from repro.common.errors import SanitizerError
from repro.common.types import PageAttributes, Translation
from repro.core.mmu import MMU, CoLTDesign, make_mmu_config
from repro.osmem.buddy import BuddyAllocator
from repro.osmem.kernel import Kernel, KernelConfig
from repro.osmem.page_table import PageTable
from repro.tlb.entries import CoalescedEntry, RangeEntry
from repro.walker.page_walker import PageWalker


def build_mmu(design=CoLTDesign.COLT_SA, pages=64):
    table = PageTable()
    for offset in range(pages):
        table.map_page(1024 + offset, 5000 + offset)
    walker = PageWalker(table, CacheHierarchy(), MMUCache())
    return MMU(make_mmu_config(design), walker, sanitize=True)


class TestResolveSanitize:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("COLT_SANITIZE", "1")
        assert resolve_sanitize(False) is False
        monkeypatch.delenv("COLT_SANITIZE")
        assert resolve_sanitize(True) is True

    def test_env_falsey_values(self, monkeypatch):
        for value in ("", "0", "false", "off", "no"):
            monkeypatch.setenv("COLT_SANITIZE", value)
            assert resolve_sanitize(None) is False
        monkeypatch.setenv("COLT_SANITIZE", "1")
        assert resolve_sanitize(None) is True

    def test_disabled_means_no_sanitizer_objects(self):
        table = PageTable()
        table.map_page(1024, 5000)
        walker = PageWalker(table, CacheHierarchy(), MMUCache())
        mmu = MMU(make_mmu_config(CoLTDesign.BASELINE), walker, sanitize=False)
        assert mmu.sanitizer is None
        assert mmu.l1.sanitizer is None
        assert BuddyAllocator(1024, sanitize=False).sanitizer is None
        kernel = Kernel(KernelConfig(num_frames=1024), sanitize=False)
        assert kernel.sanitizer is None


class TestTLBSanitizer:
    def test_clean_accesses_pass(self):
        mmu = build_mmu()
        for vpn in range(1024, 1088):
            mmu.access(vpn)
        mmu.sanitizer.full_scan()

    def test_overlapping_coalesced_ranges_in_set(self):
        mmu = build_mmu()
        mmu.access(1024)
        entry = mmu.l1.entry_for(1024)
        set_index = mmu.l1.set_index_for(entry.group_base_vpn)
        # A second way covering the same VPN: illegal per Section 4.1.2
        # (tag match + valid-bit select would be ambiguous).
        duplicate = CoalescedEntry(
            entry.group_base_vpn,
            entry.group_size,
            list(entry.valid),
            entry.base_ppn + 7,
            entry.attributes,
        )
        mmu.l1._sets[set_index][999999] = duplicate
        with pytest.raises(SanitizerError, match="covered by two entries"):
            mmu.sanitizer.full_scan()

    def test_wrong_set_placement(self):
        mmu = build_mmu()
        mmu.access(1024)
        entry = mmu.l1.entry_for(1024)
        home = mmu.l1.set_index_for(entry.group_base_vpn)
        wrong = (home + 1) % mmu.l1.config.num_sets
        del mmu.l1._sets[home][next(iter(mmu.l1._sets[home]))]
        mmu.l1._sets[wrong][999999] = entry
        with pytest.raises(SanitizerError, match="shifted index says"):
            mmu.sanitizer.full_scan()

    def test_inclusivity_break_detected(self):
        mmu = build_mmu()
        mmu.access(1024)
        # Drop the L2 copy behind the MMU's back: the L1 entry becomes
        # an inclusivity orphan.
        mmu.l2.flush()
        with pytest.raises(SanitizerError, match="inclusivity"):
            mmu.sanitizer.full_scan()

    def test_over_occupancy_detected(self):
        mmu = build_mmu()
        mmu.access(1024)
        set_index, bucket = next(
            (i, b) for i, b in enumerate(mmu.l1._sets) if b
        )
        template = next(iter(bucket.values()))
        # Stuff more ways than the set has, with disjoint groups that
        # still home to this set (stride num_sets * group_size).
        stride = mmu.l1.config.num_sets * mmu.l1.config.group_size
        for extra in range(mmu.l1.config.ways + 1):
            base = template.group_base_vpn + (extra + 1) * stride
            bucket[1000000 + extra] = CoalescedEntry(
                base,
                template.group_size,
                list(template.valid),
                9000 + extra,
                template.attributes,
            )
        with pytest.raises(SanitizerError, match="ways"):
            mmu.sanitizer.full_scan()

    def test_fa_inconsistent_overlap_detected(self):
        mmu = build_mmu(CoLTDesign.COLT_FA)
        fa = mmu.superpage_tlb
        attrs = PageAttributes.default_user()
        fa._entries[1] = RangeEntry(1024, 4, 5000, attrs)
        # Overlaps [1024, 1028) but maps it somewhere else entirely.
        fa._entries[2] = RangeEntry(1026, 4, 8000, attrs)
        with pytest.raises(SanitizerError, match="disagree"):
            mmu.sanitizer.full_scan()

    def test_fa_misaligned_superpage_detected(self):
        mmu = build_mmu(CoLTDesign.BASELINE)
        translation = Translation(
            512, 1536, PageAttributes.default_user(), is_superpage=True
        )
        mmu.superpage_tlb.insert_superpage(translation)
        entry = next(iter(mmu.superpage_tlb._entries.values()))
        object.__setattr__(entry, "base_vpn", entry.base_vpn + 3)
        with pytest.raises(SanitizerError, match="aligned"):
            mmu.sanitizer.full_scan()

    def test_after_insert_rejects_overlapping_insert(self):
        """The incremental hook fires at insert time, not just on scans."""
        mmu = build_mmu()
        mmu.access(1024)
        entry = mmu.l1.entry_for(1024)
        set_index = mmu.l1.set_index_for(entry.group_base_vpn)
        stale = CoalescedEntry(
            entry.group_base_vpn,
            entry.group_size,
            list(entry.valid),
            entry.base_ppn + 3,
            entry.attributes,
        )
        # Plant a conflicting way, then insert a disjoint-group entry to
        # trigger the per-insert set check.
        mmu.l1._sets[set_index][999999] = stale
        stride = mmu.l1.config.num_sets * mmu.l1.config.group_size
        fresh = CoalescedEntry(
            entry.group_base_vpn + stride,
            entry.group_size,
            list(entry.valid),
            7000,
            entry.attributes,
        )
        with pytest.raises(SanitizerError, match="covered by two entries"):
            mmu.l1.insert(fresh)


class TestBuddySanitizer:
    def test_clean_alloc_free_cycle_passes(self):
        buddy = BuddyAllocator(1024, sanitize=True)
        blocks = [buddy.alloc_block(0) for _ in range(10)]
        for start in blocks:
            buddy.free_block(start, 0)
        buddy.sanitizer.full_scan()

    def test_misaligned_free_block_detected(self):
        buddy = BuddyAllocator(1024, sanitize=True)
        start = buddy.alloc_block(3)  # keep [start, start+8) out of the pool
        buddy._free_lists[1][start + 1] = None  # order-1 block at odd start
        buddy._block_order[start + 1] = 1
        with pytest.raises(SanitizerError, match="misaligned"):
            buddy.sanitizer.full_scan()

    def test_overlapping_free_blocks_detected(self):
        buddy = BuddyAllocator(1024, sanitize=True)
        start = buddy.alloc_block(3)
        buddy._free_lists[2][start] = None  # covers [start, start+4)...
        buddy._block_order[start] = 2
        buddy._free_lists[1][start + 2] = None  # ...and so does this one
        buddy._block_order[start + 2] = 1
        with pytest.raises(SanitizerError, match="overlapping"):
            buddy.sanitizer.full_scan()

    def test_unmerged_buddies_detected(self):
        buddy = BuddyAllocator(1024, sanitize=True)
        start = buddy.alloc_block(3)
        # Both halves of an order-3 block free at order 2: they must
        # have merged.
        buddy._free_lists[2][start] = None
        buddy._block_order[start] = 2
        buddy._free_lists[2][start + 4] = None
        buddy._block_order[start + 4] = 2
        with pytest.raises(SanitizerError, match="unmerged"):
            buddy.sanitizer.full_scan()

    def test_accounting_mismatch_with_physical(self):
        kernel = Kernel(KernelConfig(num_frames=1024), sanitize=True)
        sanitizer = kernel.buddy.sanitizer
        sanitizer.check_accounting()  # boot state is consistent
        # Steal a frame from the physical map without telling the buddy.
        free_pfn = next(
            pfn for pfn in range(1024) if not kernel.physical.is_allocated(pfn)
        )
        kernel.physical.mark_allocated(
            free_pfn, 1, owner=77, movable=True, backing_vpn=0
        )
        with pytest.raises(SanitizerError, match="disagrees|allocated"):
            sanitizer.check_accounting()

    def test_standalone_buddy_skips_accounting(self):
        buddy = BuddyAllocator(1024, sanitize=True)
        buddy.sanitizer.check_accounting()  # no physical linked: no-op


class TestPageTableSanitizer:
    def test_clean_faults_pass(self):
        kernel = Kernel(KernelConfig(num_frames=4096, seed=3), sanitize=True)
        process = kernel.create_process("clean")
        kernel.malloc(process, 64, populate=True)
        kernel.sanitizer.full_scan()

    def test_mismatched_pte_detected(self):
        kernel = Kernel(
            KernelConfig(num_frames=4096, ths_enabled=False, seed=3),
            sanitize=True,
        )
        process = kernel.create_process("victim")
        vma = kernel.malloc(process, 8, populate=True)
        vpn = vma.start_vpn
        pfn = process.page_table.lookup(vpn).pfn
        # The frame map now claims the frame backs a different VPN.
        kernel.physical.retag(pfn, owner=process.pid, backing_vpn=vpn + 1)
        with pytest.raises(SanitizerError, match="mismatched PTE"):
            kernel.sanitizer.full_scan()

    def test_foreign_owner_detected(self):
        kernel = Kernel(
            KernelConfig(num_frames=4096, ths_enabled=False, seed=3),
            sanitize=True,
        )
        process = kernel.create_process("victim")
        vma = kernel.malloc(process, 8, populate=True)
        vpn = vma.start_vpn
        pfn = process.page_table.lookup(vpn).pfn
        kernel.physical.retag(pfn, owner=process.pid + 40, backing_vpn=vpn)
        with pytest.raises(SanitizerError, match="owned by pid"):
            kernel.sanitizer.full_scan()

    def test_mapped_frame_in_free_pool_detected(self):
        kernel = Kernel(
            KernelConfig(num_frames=4096, ths_enabled=False, seed=3),
            sanitize=True,
        )
        process = kernel.create_process("victim")
        vma = kernel.malloc(process, 1, populate=True)
        pfn = process.page_table.lookup(vma.start_vpn).pfn
        # Double-free the frame into the buddy pool while it stays mapped.
        kernel.buddy.free_block(pfn, 0)
        with pytest.raises(SanitizerError, match="free"):
            kernel.sanitizer.full_scan()


class TestSanitizedRunsAreTransparent:
    """Sanitizers observe; they must never change simulated results."""

    def test_mmu_counters_identical_with_and_without(self):
        plain = build_mmu_for_comparison(sanitize=False)
        checked = build_mmu_for_comparison(sanitize=True)
        assert plain.counters.as_dict() == checked.counters.as_dict()
        assert plain.l1.counters.as_dict() == checked.l1.counters.as_dict()
        assert plain.l2.counters.as_dict() == checked.l2.counters.as_dict()


def build_mmu_for_comparison(sanitize):
    table = PageTable()
    for offset in range(256):
        table.map_page(1024 + offset, 5000 + offset)
    walker = PageWalker(table, CacheHierarchy(), MMUCache())
    mmu = MMU(make_mmu_config(CoLTDesign.COLT_ALL), walker, sanitize=sanitize)
    for sweep in range(3):
        for vpn in range(1024, 1280, 2):
            mmu.access(vpn)
    return mmu
