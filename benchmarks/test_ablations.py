"""Benchmarks: regenerate the paper's prose ablations.

* Section 7.1.3 -- the CoLT-FA / CoLT-All L2 echo fill.
* Section 4.1.4 -- the cache-line coalescing window.
* Section 4.2.4 -- CoLT-FA's conservative 8-entry FA TLB vs 16 entries.
"""

from repro.experiments.registry import get_experiment

from conftest import run_and_print


def test_ablation_l2fill(benchmark, scale, runner, capsys):
    result = run_and_print(
        benchmark, get_experiment("abl_l2fill"), scale, runner, capsys
    )
    assert result.rows


def test_ablation_window(benchmark, scale, runner, capsys):
    result = run_and_print(
        benchmark, get_experiment("abl_window"), scale, runner, capsys
    )
    # The cache-line window (8) must beat the half-line window (4) on
    # average -- the paper's justification for the free line fetch.
    assert result.average("fa_window_8") >= result.average("fa_window_4")


def test_ablation_fasize(benchmark, scale, runner, capsys):
    result = run_and_print(
        benchmark, get_experiment("abl_fasize"), scale, runner, capsys
    )
    assert result.average("fa_16_entries") >= result.average("fa_8_entries")


def test_ablation_futurework(benchmark, scale, runner, capsys):
    result = run_and_print(
        benchmark, get_experiment("abl_futurework"), scale, runner, capsys
    )
    assert result.rows
