"""Benchmark: regenerate Figures 13-15: contiguity CDFs, THS off + low compaction.

Prints the same rows the paper reports; see EXPERIMENTS.md for the
committed paper-vs-measured comparison at default scale.
"""

from repro.experiments.registry import get_experiment

from conftest import run_and_print


def test_fig13_15(benchmark, scale, runner, capsys):
    experiment = get_experiment("fig13_15")
    result = run_and_print(benchmark, experiment, scale, runner, capsys)
    assert result.rows
