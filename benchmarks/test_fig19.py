"""Benchmark: regenerate Figure 19: CoLT-SA index left-shift sweep.

Prints the same rows the paper reports; see EXPERIMENTS.md for the
committed paper-vs-measured comparison at default scale.
"""

from repro.experiments.registry import get_experiment

from conftest import run_and_print


def test_fig19(benchmark, scale, runner, capsys):
    experiment = get_experiment("fig19")
    result = run_and_print(benchmark, experiment, scale, runner, capsys)
    assert result.rows
