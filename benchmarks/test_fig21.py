"""Benchmark: regenerate Figure 21: runtime improvements.

Prints the same rows the paper reports; see EXPERIMENTS.md for the
committed paper-vs-measured comparison at default scale.
"""

from repro.experiments.registry import get_experiment

from conftest import run_and_print


def test_fig21(benchmark, scale, runner, capsys):
    experiment = get_experiment("fig21")
    result = run_and_print(benchmark, experiment, scale, runner, capsys)
    assert result.rows
