"""Shared fixtures for the benchmark harness.

Each ``benchmarks/test_*.py`` regenerates one of the paper's tables or
figures and prints the same rows the paper reports. The scale comes from
``REPRO_SCALE`` (quick by default here, so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_SCALE=default`` or
``full`` to reproduce the committed EXPERIMENTS.md numbers).
"""

import pytest

from repro.experiments.scale import QUICK, scale_from_env
from repro.sim.runner import ExperimentRunner


@pytest.fixture(scope="session")
def scale():
    return scale_from_env(default=QUICK)


@pytest.fixture(scope="session")
def runner():
    """Session-scoped runner so experiments share cached simulations."""
    return ExperimentRunner()


def run_and_print(benchmark, experiment, scale, runner, capsys=None):
    """Run one experiment under pytest-benchmark and print its table.

    With a ``capsys`` fixture supplied, the table prints through pytest's
    capture so ``pytest benchmarks/ --benchmark-only`` shows the paper's
    rows without needing ``-s``.
    """
    result = benchmark.pedantic(
        experiment.run, args=(scale, runner), rounds=1, iterations=1
    )
    if capsys is not None:
        with capsys.disabled():
            print(f"\n=== {experiment.title} ===")
            print(result.format_table())
    else:
        print(f"\n=== {experiment.title} ===")
        print(result.format_table())
    return result
