"""Benchmark: regenerate Figures 7-9: contiguity CDFs, THS on + normal compaction.

Prints the same rows the paper reports; see EXPERIMENTS.md for the
committed paper-vs-measured comparison at default scale.
"""

from repro.experiments.registry import get_experiment

from conftest import run_and_print


def test_fig07_09(benchmark, scale, runner, capsys):
    experiment = get_experiment("fig7_9")
    result = run_and_print(benchmark, experiment, scale, runner, capsys)
    assert result.rows
