"""Benchmark: regenerate Table 1: baseline TLB MPMI with THS on and off.

Prints the same rows the paper reports; see EXPERIMENTS.md for the
committed paper-vs-measured comparison at default scale.
"""

from repro.experiments.registry import get_experiment

from conftest import run_and_print


def test_table1(benchmark, scale, runner, capsys):
    experiment = get_experiment("table1")
    result = run_and_print(benchmark, experiment, scale, runner, capsys)
    assert result.rows
