"""Benchmark: regenerate Figures 10-12: contiguity CDFs, THS off + normal compaction.

Prints the same rows the paper reports; see EXPERIMENTS.md for the
committed paper-vs-measured comparison at default scale.
"""

from repro.experiments.registry import get_experiment

from conftest import run_and_print


def test_fig10_12(benchmark, scale, runner, capsys):
    experiment = get_experiment("fig10_12")
    result = run_and_print(benchmark, experiment, scale, runner, capsys)
    assert result.rows
