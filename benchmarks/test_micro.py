"""Microbenchmarks of the simulator's hot paths.

These quantify simulation throughput, not paper results: TLB probe and
fill rates, buddy allocator churn, page-walk cost, and the end-to-end
per-access rate of the full MMU. Useful for spotting performance
regressions in the simulator itself.
"""

import numpy as np

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mmu_cache import MMUCache
from repro.common.types import Translation
from repro.core.mmu import MMU, CoLTDesign, make_mmu_config
from repro.osmem.buddy import BuddyAllocator
from repro.osmem.page_table import PageTable
from repro.tlb.config import SetAssociativeTLBConfig
from repro.tlb.set_associative import SetAssociativeTLB
from repro.walker.page_walker import PageWalker


def test_sa_tlb_probe_throughput(benchmark):
    tlb = SetAssociativeTLB(SetAssociativeTLBConfig(128, 4, 2))
    for vpn in range(0, 512, 4):
        tlb.insert_translation(Translation(vpn, vpn))
    vpns = np.random.default_rng(1).integers(0, 512, size=4096)

    def probe_all():
        for vpn in vpns:
            tlb.probe(int(vpn))

    benchmark(probe_all)


def test_buddy_alloc_free_cycle(benchmark):
    def cycle():
        buddy = BuddyAllocator(4096)
        live = []
        for _ in range(64):
            live.extend(buddy.alloc_run_best_effort(24))
        for start, length in live:
            buddy.free_run(start, length)

    benchmark(cycle)


def test_page_walk_cost(benchmark):
    table = PageTable()
    for vpn in range(4096):
        table.map_page(vpn, vpn + 10_000)
    walker = PageWalker(table, CacheHierarchy(), MMUCache())
    vpns = np.random.default_rng(2).integers(0, 4096, size=1024)

    def walk_all():
        for vpn in vpns:
            walker.walk(int(vpn))

    benchmark(walk_all)


def test_mmu_access_rate_colt_all(benchmark):
    table = PageTable()
    for vpn in range(4096):
        table.map_page(vpn, vpn + 10_000)
    walker = PageWalker(table, CacheHierarchy(), MMUCache())
    mmu = MMU(make_mmu_config(CoLTDesign.COLT_ALL), walker)
    vpns = np.random.default_rng(3).integers(0, 4096, size=8192)

    def access_all():
        for vpn in vpns:
            mmu.access(int(vpn))

    benchmark(access_all)
