#!/usr/bin/env python
"""Run-history trends, diffs and the regression gate.

Consumes the ``colt-history-v1`` records every store-backed run of
``python -m repro.experiments`` appends to
``<cache>/history/history.jsonl`` (see ``repro.obs.history``).

Trend table (newest runs last)::

    python tools/obs_history.py --cache-dir .colt-cache
    python tools/obs_history.py --history path/to/history.jsonl --last 20

Diff two runs (by history index; negative = from the end)::

    python tools/obs_history.py --cache-dir .colt-cache --diff -2 -1

Regression gate -- what CI runs after the telemetry campaign::

    python tools/obs_history.py --cache-dir .colt-cache --gate \\
        --baseline tools/history_baseline.json

The gate takes the *newest* record matching the baseline's ``match``
coordinates (figure/scale/engine) and fails (exit 1) when any
bit-identity counter in ``exact_counters`` drifts from the committed
value, when a ``ceilings`` metric (wall time) exceeds its bound, or
when a ``floors`` metric (vector speedup) undercuts its bound.

``--ingest-bench BENCH.json`` folds a ``bench_runner.py`` artifact's
aggregate vector speedup into the newest history record, so perf
trajectory accumulates in one inspectable file.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.atomicio import atomic_write_text  # noqa: E402
from repro.common.errors import ConfigurationError  # noqa: E402
from repro.obs.history import (  # noqa: E402
    diff_records,
    gate_history,
    history_path,
    load_baseline,
    load_history,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/obs_history.py",
        description="Inspect and gate the colt-history-v1 run series.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--history", type=Path, default=None, metavar="FILE",
        help="history.jsonl to read (overrides --cache-dir)",
    )
    source.add_argument(
        "--cache-dir", type=Path, default=Path(".colt-cache"), metavar="DIR",
        help="result-store root; reads DIR/history/history.jsonl "
             "(default: .colt-cache)",
    )
    parser.add_argument(
        "--last", type=int, default=10, metavar="N",
        help="trend table: show the newest N records (default: 10)",
    )
    parser.add_argument(
        "--diff", nargs=2, type=int, default=None, metavar=("A", "B"),
        help="diff two records by index (0-based; negative from the end)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="regression-gate the newest matching record",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="colt-history-baseline-v1 document (required with --gate)",
    )
    parser.add_argument(
        "--ingest-bench", type=Path, default=None, metavar="BENCH.json",
        help="attach a bench_runner.py artifact's aggregate speedup to "
             "the newest record as vector_speedup",
    )
    return parser


def _resolve_history(args) -> Path:
    if args.history is not None:
        return args.history
    return history_path(args.cache_dir)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value != int(value):
        return f"{value:.3f}"
    return str(int(value)) if isinstance(value, float) else str(value)


def _trend(records, last: int) -> None:
    shown = records[-last:] if last > 0 else records
    header = (
        f"{'#':>3}  {'status':11s} {'figure':18s} {'scale':8s} "
        f"{'engine':7s} {'wall_total':>10s} {'hit_ratio':>9s} "
        f"{'accesses':>10s}"
    )
    print(header)
    print("-" * len(header))
    base = len(records) - len(shown)
    for offset, record in enumerate(shown):
        wall = record.get("wall", {}).get("total")
        store = record.get("store") or {}
        counters = record.get("counters", {})
        print(
            f"{base + offset:>3}  "
            f"{record.get('status', '?'):11s} "
            f"{str(record.get('figure', '?'))[:18]:18s} "
            f"{str(record.get('scale', '?')):8s} "
            f"{str(record.get('engine', '?')):7s} "
            f"{_fmt(round(wall, 2) if wall is not None else None):>10s} "
            f"{_fmt(store.get('hit_ratio')):>9s} "
            f"{_fmt(counters.get('colt_mmu_accesses')):>10s}"
        )
    print(f"\n{len(records)} record(s) total")


def _diff(records, a_index: int, b_index: int) -> int:
    try:
        a, b = records[a_index], records[b_index]
    except IndexError:
        print(
            f"obs_history: diff indices {a_index},{b_index} out of range "
            f"(history has {len(records)} records)", file=sys.stderr,
        )
        return 2
    rows = diff_records(a, b)
    if not rows:
        print("records are numerically identical")
        return 0
    width = max(len(row["path"]) for row in rows)
    print(f"{'metric':{width}s} {'A':>14s} {'B':>14s} {'delta':>14s}")
    for row in rows:
        print(
            f"{row['path']:{width}s} {_fmt(row['a']):>14s} "
            f"{_fmt(row['b']):>14s} {_fmt(row['delta']):>14s}"
        )
    return 0


def _gate(records, baseline_path: Path) -> int:
    baseline = load_baseline(baseline_path)
    record, problems = gate_history(records, baseline)
    coords = baseline.get("match", {})
    if problems:
        for problem in problems:
            print(f"GATE FAIL {problem}")
        return 1
    checked = (
        len(baseline.get("exact_counters", {}))
        + len(baseline.get("ceilings", {}))
        + len(baseline.get("floors", {}))
    )
    print(
        f"GATE OK {coords}: {checked} check(s) passed against record "
        f"status={record.get('status')} wall_total="
        f"{_fmt(record.get('wall', {}).get('total'))}s"
    )
    return 0


def _ingest_bench(history_file: Path, records, bench_path: Path) -> int:
    """Set vector_speedup on the newest record from a bench artifact."""
    if not records:
        print("obs_history: no history records to annotate", file=sys.stderr)
        return 2
    try:
        bench = json.loads(bench_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs_history: unreadable bench file: {exc}", file=sys.stderr)
        return 2
    speedup = bench.get("aggregate_speedup") or bench.get("speedup")
    if speedup is None:
        print(
            f"obs_history: {bench_path} has no aggregate_speedup/speedup "
            "field", file=sys.stderr,
        )
        return 2
    records[-1]["vector_speedup"] = float(speedup)
    lines = [json.dumps(record, sort_keys=True) for record in records]
    atomic_write_text(history_file, "\n".join(lines) + "\n")
    print(
        f"attached vector_speedup={float(speedup):.2f} to newest record "
        f"in {history_file}"
    )
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    history_file = _resolve_history(args)
    if not history_file.exists():
        print(
            f"obs_history: no history at {history_file} (runs append one "
            "record each; pass --cache-dir or --history)", file=sys.stderr,
        )
        return 2
    records = load_history(history_file)
    if not records:
        print(f"obs_history: {history_file} holds no valid records",
              file=sys.stderr)
        return 2

    if args.ingest_bench is not None:
        return _ingest_bench(history_file, records, args.ingest_bench)
    if args.gate:
        if args.baseline is None:
            print("obs_history: --gate needs --baseline FILE",
                  file=sys.stderr)
            return 2
        try:
            return _gate(records, args.baseline)
        except ConfigurationError as exc:
            print(f"obs_history: {exc}", file=sys.stderr)
            return 2
    if args.diff is not None:
        return _diff(records, args.diff[0], args.diff[1])
    _trend(records, args.last)
    return 0


if __name__ == "__main__":
    sys.exit(main())
