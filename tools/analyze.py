#!/usr/bin/env python
"""Repo-root entry point for the project-wide static analysis.

Equivalent to the ``colt-analyze`` console script, but runnable straight
from a checkout with no install step:

    python tools/analyze.py src tools
    python tools/analyze.py --check-docs
    python tools/analyze.py src tools --format sarif --output out.sarif

See ``repro.analysis.static`` for the pass framework and analyzers.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.static.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
