"""Calibration harness: measured vs Table 1 MPMI for every benchmark.

Timing here is display-only (progress feedback on the terminal) and uses
the monotonic ``perf_counter``; elapsed times are never serialized into
results, so reruns of the same seed stay bit-identical.
"""
import sys, time
from repro.sim import SimulationConfig, simulate
from repro.core import CoLTDesign
from repro.osmem import KernelConfig
from repro.workloads import TABLE1_ORDER, TABLE1_PAPER_MPMI

accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
only = sys.argv[2].split(',') if len(sys.argv) > 2 else TABLE1_ORDER
print(f"{'bench':11s} {'L1on':>7s} {'/paper':>7s} {'L2on':>7s} {'/paper':>7s}"
      f" {'L1off':>7s} {'/paper':>7s} {'L2off':>7s} {'/paper':>7s} {'ctg_on':>7s} {'sp':>4s}")
t0 = time.perf_counter()
for bench in only:
    row = []
    for ths in (True, False):
        cfg = SimulationConfig(benchmark=bench, design=CoLTDesign.BASELINE,
            kernel=KernelConfig(num_frames=1<<16, ths_enabled=ths),
            accesses=accesses, scale=1.0)
        r = simulate(cfg)
        row.append(r)
    p = TABLE1_PAPER_MPMI[bench]
    on, off = row
    print(f"{bench:11s} {int(on.l1_mpmi):7d} {p[0]:7d} {int(on.l2_mpmi):7d} {p[1]:7d}"
          f" {int(off.l1_mpmi):7d} {p[2]:7d} {int(off.l2_mpmi):7d} {p[3]:7d}"
          f" {on.average_contiguity:7.1f} {on.contiguity.superpage_pages//512:4d}  [{time.perf_counter()-t0:.0f}s]")
