"""Runner-speedup smoke benchmark: monolithic vs capture+replay.

Times the fig18 + fig21 pipeline at QUICK scale twice:

1. **serial monolithic** -- ``ExperimentRunner(monolithic=True)``, the
   legacy path: every (benchmark, design) pair re-runs the full
   OS+workload interleaving inline.
2. **parallel capture+replay** -- ``ExperimentRunner(jobs=N)``: one OS
   capture per benchmark, one TLB replay per design, fanned across a
   process pool.

Writes a ``BENCH_runner.json`` artifact with wall-clock per figure,
aggregate simulated accesses/second for both modes, and the speedup;
exits non-zero if the speedup falls below ``--min-speedup`` (CI runs
with ``--min-speedup 2.0 --jobs 4``; on a single-core box pass
``--min-speedup 0`` to just record numbers).

Benchmarking needs ``time.perf_counter``, so this file sits on the
determinism lint's ``WALL_CLOCK_ALLOW`` list; the timings go to the
artifact and the terminal only -- nothing here feeds back into
simulation results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.sim.runner import ExperimentRunner  # noqa: E402
from repro.sim.scenario import scenario_config  # noqa: E402
from repro.experiments.registry import get_experiment  # noqa: E402
from repro.experiments.scale import QUICK  # noqa: E402

FIGURES = ("fig18", "fig21")


def _time_pipeline(runner: ExperimentRunner) -> dict:
    """Run the figure pipeline under ``runner``; return per-figure timings."""
    timings = {}
    for figure_id in FIGURES:
        experiment = get_experiment(figure_id)
        started = time.perf_counter()
        experiment.run(QUICK, runner)
        timings[figure_id] = time.perf_counter() - started
    return timings


def _simulated_accesses(runner: ExperimentRunner) -> int:
    """Total trace accesses the runner's cached results account for."""
    return sum(config.accesses for config in runner._cache)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time serial-monolithic vs parallel capture+replay "
                    "on the fig18+fig21 QUICK pipeline."
    )
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 1, metavar="N",
        help="worker processes for the capture/replay mode "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0, metavar="X",
        help="fail (exit 1) if parallel speedup is below X "
             "(default: 0, record-only)",
    )
    parser.add_argument(
        "--output", default="BENCH_runner.json", metavar="FILE",
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    print(f"benchmarking fig18+fig21 at QUICK scale (jobs={args.jobs})")

    monolithic_runner = ExperimentRunner(monolithic=True)
    mono_started = time.perf_counter()
    mono_timings = _time_pipeline(monolithic_runner)
    mono_total = time.perf_counter() - mono_started
    accesses = _simulated_accesses(monolithic_runner)

    parallel_runner = ExperimentRunner(jobs=args.jobs)
    par_started = time.perf_counter()
    par_timings = _time_pipeline(parallel_runner)
    par_total = time.perf_counter() - par_started

    scenarios = len(
        {scenario_config(config) for config in parallel_runner._cache}
    )
    speedup = mono_total / par_total if par_total > 0 else float("inf")
    report = {
        "scale": "quick",
        "jobs": args.jobs,
        "figures": list(FIGURES),
        "simulation_runs": len(monolithic_runner._cache),
        "scenarios_captured": scenarios,
        "simulated_accesses": accesses,
        "serial_monolithic": {
            "wall_clock_s": {k: round(v, 3) for k, v in mono_timings.items()},
            "total_s": round(mono_total, 3),
            "accesses_per_sec": round(accesses / mono_total, 1),
        },
        "parallel_replay": {
            "wall_clock_s": {k: round(v, 3) for k, v in par_timings.items()},
            "total_s": round(par_total, 3),
            "accesses_per_sec": round(accesses / par_total, 1),
        },
        "speedup": round(speedup, 3),
        "min_speedup": args.min_speedup,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"serial monolithic : {mono_total:8.2f}s "
          f"({report['serial_monolithic']['accesses_per_sec']:.0f} acc/s)")
    print(f"parallel replay   : {par_total:8.2f}s "
          f"({report['parallel_replay']['accesses_per_sec']:.0f} acc/s)")
    print(f"speedup           : {speedup:8.2f}x  (threshold "
          f"{args.min_speedup}x)")
    print(f"wrote {args.output}")

    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{args.min_speedup}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
