"""Runner-speedup smoke benchmark: monolithic vs capture+replay.

Times the fig18 + fig21 pipeline at QUICK scale twice:

1. **serial monolithic** -- ``ExperimentRunner(monolithic=True)``, the
   legacy path: every (benchmark, design) pair re-runs the full
   OS+workload interleaving inline.
2. **parallel capture+replay** -- ``ExperimentRunner(jobs=N)``: one OS
   capture per benchmark, one TLB replay per design, fanned across a
   process pool.

Writes a ``BENCH_runner.json`` artifact with wall-clock per figure,
aggregate simulated accesses/second for both modes, and the speedup;
exits non-zero if the speedup falls below ``--min-speedup`` (CI runs
with ``--min-speedup 2.0 --jobs 4``; on a single-core box pass
``--min-speedup 0`` to just record numbers).

A third, untimed-against-the-threshold phase exercises the on-disk
result store in a temporary directory -- one cold pipeline populating
it, one warm pipeline replaying from it -- and records the store's
hit/miss/eviction/save counters plus the warm-over-cold speedup in the
artifact's ``store`` section (``--skip-store`` omits it).
``--max-trace-overhead X`` adds a ``COLT_TRACE=1`` run of the parallel
pipeline and fails if traced wall-clock exceeds ``X`` times the
untraced parallel time. ``--max-resilience-overhead X`` does the same
for the resilience layer: it re-times the parallel pipeline with a
retry policy, per-task deadline and a never-matching fault plan
attached, and fails if the fault-free machinery costs more than ``X``
times the plain parallel run.

``--max-dist-overhead X`` times the same pipeline under the
distributed coordinator (``DistributedRunner`` with ``--dist-workers``
worker subprocesses, aggregate parallelism matched to ``--jobs``),
writes the timings and ``colt_dist`` counters to ``BENCH_dist.json``
(``--dist-output``), and fails if coordinating costs more than ``X``
times the plain parallel run (CI pins 1.3x at QUICK scale).

``--min-vector-speedup X`` arms a separate replay-engine phase: every
QUICK benchmark is captured once, then replayed under all five designs
by both the scalar oracle and the vectorized engine
(``repro.sim.engine``). The phase cross-checks bit-identity of every
result pair, writes the per-benchmark timings and aggregate replay
speedup to ``BENCH_vector.json`` (``--vector-output``), and fails if
the aggregate speedup falls below ``X`` (CI runs with
``--min-vector-speedup 5.0``; pass ``0`` to just record numbers).

Benchmarking needs ``time.perf_counter``, so this file sits on the
determinism lint's ``WALL_CLOCK_ALLOW`` list; the timings go to the
artifact and the terminal only -- nothing here feeds back into
simulation results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.core.mmu import CoLTDesign  # noqa: E402
from repro.obs.trace import TRACE_ENV, reset_tracing  # noqa: E402
from repro.sim.dist.coordinator import DistributedRunner  # noqa: E402
from repro.sim.engine.vector import vector_replay_scenario  # noqa: E402
from repro.sim.faults import FaultPlan  # noqa: E402
from repro.sim.replay import replay_scenario  # noqa: E402
from repro.sim.resilience import RetryPolicy  # noqa: E402
from repro.sim.runner import ExperimentRunner  # noqa: E402
from repro.sim.scenario import capture_scenario, scenario_config  # noqa: E402
from repro.sim.store import ResultStore  # noqa: E402
from repro.experiments.environments import simulation_config  # noqa: E402
from repro.experiments.registry import get_experiment  # noqa: E402
from repro.experiments.scale import QUICK  # noqa: E402

FIGURES = ("fig18", "fig21")


def _time_pipeline(runner: ExperimentRunner) -> dict:
    """Run the figure pipeline under ``runner``; return per-figure timings."""
    timings = {}
    for figure_id in FIGURES:
        experiment = get_experiment(figure_id)
        started = time.perf_counter()
        experiment.run(QUICK, runner)
        timings[figure_id] = time.perf_counter() - started
    return timings


def _simulated_accesses(runner: ExperimentRunner) -> int:
    """Total trace accesses the runner's cached results account for."""
    return sum(config.accesses for config in runner._cache)


def _store_phase(jobs: int) -> dict:
    """Cold-populate then warm-replay a throwaway result store."""
    with tempfile.TemporaryDirectory(prefix="colt-bench-store-") as tmp:
        cold_runner = ExperimentRunner(jobs=jobs, store=ResultStore(tmp))
        started = time.perf_counter()
        _time_pipeline(cold_runner)
        cold_s = time.perf_counter() - started
        cold = cold_runner.store_summary()

        warm_runner = ExperimentRunner(jobs=jobs, store=ResultStore(tmp))
        started = time.perf_counter()
        _time_pipeline(warm_runner)
        warm_s = time.perf_counter() - started
        warm = warm_runner.store_summary()
        entries = len(warm_runner.store)

    return {
        "entries": entries,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_speedup": round(cold_s / warm_s, 3) if warm_s > 0 else None,
        "cold": {k: round(v, 3) for k, v in cold.items()},
        "warm": {k: round(v, 3) for k, v in warm.items()},
    }


def _traced_phase(jobs: int) -> dict:
    """Time the parallel pipeline with ``COLT_TRACE=1`` exported."""
    os.environ[TRACE_ENV] = "1"
    reset_tracing()
    try:
        runner = ExperimentRunner(jobs=jobs)
        started = time.perf_counter()
        _time_pipeline(runner)
        traced_s = time.perf_counter() - started
        events = len(runner.trace_events())
    finally:
        os.environ.pop(TRACE_ENV, None)
        reset_tracing()
    return {"total_s": round(traced_s, 3), "events": events}


def _resilience_phase(jobs: int) -> dict:
    """Time the pipeline with the full resilience machinery armed.

    The fault plan targets an index no QUICK batch reaches, so nothing
    fires -- this measures the overhead of per-task submission, deadline
    waits and fault-plan checks on the happy path.
    """
    runner = ExperimentRunner(
        jobs=jobs,
        policy=RetryPolicy(max_retries=3, backoff_s=0.05, timeout_s=600.0),
        faults=FaultPlan.parse("raise@replay:999983"),
    )
    started = time.perf_counter()
    _time_pipeline(runner)
    total = time.perf_counter() - started
    counts = runner.resilience_counters.as_dict()
    return {"total_s": round(total, 3), "tasks": counts["tasks"]}


def _dist_phase(jobs: int, workers: int) -> dict:
    """Time the pipeline under the distributed coordinator.

    Storeless (no shard sync, no journal I/O in the way): this
    measures the pure cost of sharding, the wire protocol, and the
    merge loop, with aggregate parallelism matched to ``jobs``.
    """
    runner = DistributedRunner(workers=workers, jobs=jobs)
    started = time.perf_counter()
    try:
        timings = _time_pipeline(runner)
    finally:
        runner.close()
    total = time.perf_counter() - started
    counts = {
        k: v for k, v in runner.dist_counters.as_dict().items() if v
    }
    return {
        "scale": "quick",
        "workers": workers,
        "jobs": jobs,
        "wall_clock_s": {k: round(v, 3) for k, v in timings.items()},
        "total_s": round(total, 3),
        "counters": counts,
    }


def _results_identical(scalar, vector) -> bool:
    return (
        scalar.l1_misses == vector.l1_misses
        and scalar.l2_misses == vector.l2_misses
        and scalar.mmu_counters.values == vector.mmu_counters.values
        and scalar.performance == vector.performance
    )


def _vector_phase() -> dict:
    """Replay every QUICK benchmark with both engines; time and verify.

    One capture per benchmark (untimed), then all five designs replayed
    scalar and vector. The vector replay is timed best-of-two so the
    first call's cache warmup does not punish the aggregate; every
    scalar/vector result pair is cross-checked for bit-identity.
    """
    designs = tuple(CoLTDesign)
    benchmarks = {}
    scalar_total = vector_total = 0.0
    replayed_accesses = 0
    identical = True
    for benchmark in QUICK.benchmarks:
        base = simulation_config(benchmark, QUICK)
        scenario = capture_scenario(base)
        replayed_accesses += scenario.accesses * len(designs)
        scalar_s = vector_s = 0.0
        for design in designs:
            config = base.with_updates(design=design)
            started = time.perf_counter()
            scalar = replay_scenario(scenario, config)
            scalar_s += time.perf_counter() - started
            best = None
            for _ in range(2):
                started = time.perf_counter()
                vector = vector_replay_scenario(scenario, config)
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            vector_s += best
            if not _results_identical(scalar, vector):
                identical = False
                print(
                    f"FAIL: vector result diverges from scalar for "
                    f"{benchmark}/{design.value}", file=sys.stderr,
                )
        benchmarks[benchmark] = {
            "scalar_s": round(scalar_s, 3),
            "vector_s": round(vector_s, 3),
            "speedup": round(scalar_s / vector_s, 3) if vector_s else None,
        }
        scalar_total += scalar_s
        vector_total += vector_s
    return {
        "scale": "quick",
        "designs": [design.value for design in designs],
        "replayed_accesses": replayed_accesses,
        "benchmarks": benchmarks,
        "scalar_total_s": round(scalar_total, 3),
        "vector_total_s": round(vector_total, 3),
        "speedup": (
            round(scalar_total / vector_total, 3) if vector_total else None
        ),
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time serial-monolithic vs parallel capture+replay "
                    "on the fig18+fig21 QUICK pipeline."
    )
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 1, metavar="N",
        help="worker processes for the capture/replay mode "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0, metavar="X",
        help="fail (exit 1) if parallel speedup is below X "
             "(default: 0, record-only)",
    )
    parser.add_argument(
        "--output", default="BENCH_runner.json", metavar="FILE",
        help="where to write the JSON artifact",
    )
    parser.add_argument(
        "--skip-store", action="store_true",
        help="skip the cold/warm result-store phase",
    )
    parser.add_argument(
        "--max-trace-overhead", type=float, default=None, metavar="X",
        help="also run the pipeline with COLT_TRACE=1 and fail if "
             "traced wall-clock exceeds X times the untraced parallel "
             "time",
    )
    parser.add_argument(
        "--max-resilience-overhead", type=float, default=None, metavar="X",
        help="also run the pipeline with retries/deadlines/a dormant "
             "fault plan armed and fail if it exceeds X times the "
             "plain parallel time",
    )
    parser.add_argument(
        "--max-dist-overhead", type=float, default=None, metavar="X",
        help="also run the pipeline under the distributed coordinator "
             "(--dist-workers subprocesses) and fail if it exceeds X "
             "times the plain parallel time",
    )
    parser.add_argument(
        "--dist-workers", type=int, default=3, metavar="N",
        help="worker subprocesses for the distributed phase "
             "(default: 3)",
    )
    parser.add_argument(
        "--dist-output", default="BENCH_dist.json", metavar="FILE",
        help="where to write the distributed-phase JSON artifact",
    )
    parser.add_argument(
        "--min-vector-speedup", type=float, default=None, metavar="X",
        help="also time scalar-vs-vector replay over every QUICK "
             "benchmark and design, verify bit-identity, and fail if "
             "the aggregate replay speedup is below X (0: record-only)",
    )
    parser.add_argument(
        "--vector-output", default="BENCH_vector.json", metavar="FILE",
        help="where to write the vector-phase JSON artifact",
    )
    args = parser.parse_args(argv)

    print(f"benchmarking fig18+fig21 at QUICK scale (jobs={args.jobs})")

    monolithic_runner = ExperimentRunner(monolithic=True)
    mono_started = time.perf_counter()
    mono_timings = _time_pipeline(monolithic_runner)
    mono_total = time.perf_counter() - mono_started
    accesses = _simulated_accesses(monolithic_runner)

    parallel_runner = ExperimentRunner(jobs=args.jobs)
    par_started = time.perf_counter()
    par_timings = _time_pipeline(parallel_runner)
    par_total = time.perf_counter() - par_started

    scenarios = len(
        {scenario_config(config) for config in parallel_runner._cache}
    )
    speedup = mono_total / par_total if par_total > 0 else float("inf")
    report = {
        "scale": "quick",
        "jobs": args.jobs,
        "figures": list(FIGURES),
        "simulation_runs": len(monolithic_runner._cache),
        "scenarios_captured": scenarios,
        "simulated_accesses": accesses,
        "serial_monolithic": {
            "wall_clock_s": {k: round(v, 3) for k, v in mono_timings.items()},
            "total_s": round(mono_total, 3),
            "accesses_per_sec": round(accesses / mono_total, 1),
        },
        "parallel_replay": {
            "wall_clock_s": {k: round(v, 3) for k, v in par_timings.items()},
            "total_s": round(par_total, 3),
            "accesses_per_sec": round(accesses / par_total, 1),
        },
        "speedup": round(speedup, 3),
        "min_speedup": args.min_speedup,
    }

    if not args.skip_store:
        report["store"] = _store_phase(args.jobs)

    trace_overhead = None
    if args.max_trace_overhead is not None:
        report["traced"] = _traced_phase(args.jobs)
        trace_overhead = (
            report["traced"]["total_s"] / par_total if par_total > 0 else 0.0
        )
        report["traced"]["overhead_ratio"] = round(trace_overhead, 3)
        report["traced"]["max_overhead_ratio"] = args.max_trace_overhead

    resilience_overhead = None
    if args.max_resilience_overhead is not None:
        report["resilience"] = _resilience_phase(args.jobs)
        resilience_overhead = (
            report["resilience"]["total_s"] / par_total
            if par_total > 0 else 0.0
        )
        report["resilience"]["overhead_ratio"] = round(
            resilience_overhead, 3
        )
        report["resilience"]["max_overhead_ratio"] = (
            args.max_resilience_overhead
        )

    dist_report = None
    dist_overhead = None
    if args.max_dist_overhead is not None:
        dist_report = _dist_phase(args.jobs, args.dist_workers)
        dist_overhead = (
            dist_report["total_s"] / par_total if par_total > 0 else 0.0
        )
        dist_report["overhead_ratio"] = round(dist_overhead, 3)
        dist_report["max_overhead_ratio"] = args.max_dist_overhead
        dist_report["parallel_total_s"] = round(par_total, 3)
        with open(args.dist_output, "w") as handle:
            json.dump(dist_report, handle, indent=2)
            handle.write("\n")

    vector_report = None
    if args.min_vector_speedup is not None:
        vector_report = _vector_phase()
        vector_report["min_speedup"] = args.min_vector_speedup
        with open(args.vector_output, "w") as handle:
            json.dump(vector_report, handle, indent=2)
            handle.write("\n")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"serial monolithic : {mono_total:8.2f}s "
          f"({report['serial_monolithic']['accesses_per_sec']:.0f} acc/s)")
    print(f"parallel replay   : {par_total:8.2f}s "
          f"({report['parallel_replay']['accesses_per_sec']:.0f} acc/s)")
    print(f"speedup           : {speedup:8.2f}x  (threshold "
          f"{args.min_speedup}x)")
    if "store" in report:
        store = report["store"]
        print(f"store cold/warm   : {store['cold_s']:8.2f}s / "
              f"{store['warm_s']:.2f}s "
              f"({store['warm_speedup']}x warm speedup, "
              f"{store['warm']['hits']:.0f} hits, "
              f"{store['entries']} entries)")
    if trace_overhead is not None:
        print(f"traced overhead   : {trace_overhead:8.2f}x "
              f"({report['traced']['events']} events, threshold "
              f"{args.max_trace_overhead}x)")
    if resilience_overhead is not None:
        print(f"resilience ovrhd  : {resilience_overhead:8.2f}x "
              f"({report['resilience']['tasks']} tasks, threshold "
              f"{args.max_resilience_overhead}x)")
    if dist_overhead is not None:
        print(f"distributed ovrhd : {dist_overhead:8.2f}x "
              f"({dist_report['counters'].get('merged', 0)} groups "
              f"merged over {args.dist_workers} workers, threshold "
              f"{args.max_dist_overhead}x); wrote {args.dist_output}")
    if vector_report is not None:
        print(f"vector replay     : {vector_report['scalar_total_s']:8.2f}s "
              f"scalar / {vector_report['vector_total_s']:.2f}s vector = "
              f"{vector_report['speedup']}x (threshold "
              f"{args.min_vector_speedup}x); wrote {args.vector_output}")
    print(f"wrote {args.output}")

    failed = False
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{args.min_speedup}x", file=sys.stderr)
        failed = True
    if (
        trace_overhead is not None
        and trace_overhead > args.max_trace_overhead
    ):
        print(f"FAIL: traced overhead {trace_overhead:.2f}x > allowed "
              f"{args.max_trace_overhead}x", file=sys.stderr)
        failed = True
    if (
        resilience_overhead is not None
        and resilience_overhead > args.max_resilience_overhead
    ):
        print(f"FAIL: resilience overhead {resilience_overhead:.2f}x > "
              f"allowed {args.max_resilience_overhead}x", file=sys.stderr)
        failed = True
    if (
        dist_overhead is not None
        and dist_overhead > args.max_dist_overhead
    ):
        print(f"FAIL: distributed overhead {dist_overhead:.2f}x > "
              f"allowed {args.max_dist_overhead}x", file=sys.stderr)
        failed = True
    if vector_report is not None:
        if not vector_report["identical"]:
            print("FAIL: vector engine diverged from the scalar oracle",
                  file=sys.stderr)
            failed = True
        elif vector_report["speedup"] < args.min_vector_speedup:
            print(f"FAIL: vector replay speedup "
                  f"{vector_report['speedup']:.2f}x < required "
                  f"{args.min_vector_speedup}x", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
