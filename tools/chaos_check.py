"""Chaos invariant check: faulted runs must be bit-identical to clean.

Runs the fig18 QUICK pipeline three times and compares results:

1. **clean** -- no faults, cold temporary store A: the baseline table
   and result set.
2. **chaos** -- cold temporary store B with a ``COLT_FAULTS`` plan that
   crashes a capture worker, raises in a replay task, and tears/flips
   two store writes. The retry/recovery machinery must absorb all of it
   and produce the *same* table and the same per-config results.
3. **resume** -- a fresh fault-free runner over store B, whose on-disk
   entries include the two corrupted writes. The hardened load path
   must quarantine exactly those entries (never a silent unlink, never
   a crash), recompute them, and again match the clean results.

``--campaign`` switches to the end-to-end campaign invariant instead:
it drives ``python -m repro.experiments --campaign`` subprocesses
through a clean run, a SIGTERM kill mid-campaign (must exit with the
resumable status and leave a consistent write-ahead journal), a
``--resume`` that finishes the journal with table dumps byte-identical
to the clean run, and a stall-watchdog run whose delayed capture must
produce a stack-dump artifact while still converging to the clean
tables.

``--telemetry`` checks the telemetry plane's crash discipline: a
campaign serving ``--telemetry-port 0`` must answer /healthz, /progress
and /metrics while running, shut the server down cleanly on SIGTERM
(exit 75, port released), and still append a non-ok ``colt-history-v1``
record for the killed run; the subsequent ``--resume`` must finish the
journal and append an ``ok`` record to the same history file.

Exit status is non-zero on any divergence; the chaos CI job runs
``python tools/chaos_check.py --jobs 2`` and
``python tools/chaos_check.py --campaign --jobs 2``. Because injected
faults only kill/delay/corrupt -- they never feed a number into a
simulation -- any mismatch here is a real determinism or recovery bug.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.sim.campaign import SHUTDOWN_EXIT_CODE  # noqa: E402
from repro.sim.faults import FaultPlan  # noqa: E402
from repro.sim.resilience import RetryPolicy  # noqa: E402
from repro.sim.runner import ExperimentRunner  # noqa: E402
from repro.sim.store import QUARANTINE_DIR, ResultStore  # noqa: E402
from repro.experiments.registry import get_experiment  # noqa: E402
from repro.experiments.scale import QUICK  # noqa: E402

#: One worker crash, one task exception, one torn and one bit-flipped
#: store write -- every fault kind the plan grammar knows.
DEFAULT_PLAN = (
    "crash@capture:0;raise@replay:1;torn@store.write:0;corrupt@store.write:2"
)

#: Store-write indices DEFAULT_PLAN corrupts (drives the expected
#: quarantine count of the resume phase).
CORRUPTED_WRITES = 2

FIGURE = "fig18"

#: Experiments for the campaign check. fig19 replays fig18's scenario
#: groups, so the second campaign entry is cheap but still exercises a
#: distinct journal transition.
CAMPAIGN_IDS = ("fig18", "fig19")

#: Parent-process hold on campaign entry 1: a window in which the
#: SIGTERM deterministically lands between the journal's
#: ``mark_running`` and the experiment's first task, so the kill always
#: interrupts a running campaign rather than racing its completion.
HOLD_SECONDS = 10.0

#: Stall-watchdog phase: the first capture sleeps DELAY, the watchdog
#: trips at STALL (well above a healthy QUICK capture's ~2s) and
#: requeues it; the retried attempt escapes the x1 fault.
STALL_DELAY_SECONDS = 12.0
STALL_TIMEOUT_SECONDS = 4.0


def _run_pipeline(runner: ExperimentRunner) -> str:
    """Run the figure under ``runner``; return its formatted table."""
    return get_experiment(FIGURE).run(QUICK, runner).format_table()


def _compare(name: str, clean: ExperimentRunner, other: ExperimentRunner,
             clean_table: str, other_table: str) -> int:
    failures = 0
    if other_table != clean_table:
        print(f"FAIL: {name} table differs from clean run", file=sys.stderr)
        failures += 1
    if other._cache != clean._cache:
        differing = [
            config
            for config, result in clean._cache.items()
            if other._cache.get(config) != result
        ]
        print(
            f"FAIL: {name} results differ from clean run for "
            f"{len(differing)} config(s): "
            + "; ".join(
                f"{c.benchmark}/{c.design.value}" for c in differing[:4]
            ),
            file=sys.stderr,
        )
        failures += 1
    if not failures:
        print(f"ok: {name} results bit-identical to clean run")
    return failures


def _campaign_env(faults: str = "") -> dict:
    """Subprocess environment: QUICK scale, src on path, chosen faults."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_SCALE"] = "quick"
    if faults:
        env["COLT_FAULTS"] = faults
    else:
        env.pop("COLT_FAULTS", None)
    # The phases below pass watchdog/telemetry knobs explicitly; ambient
    # settings must not leak in.
    for var in ("COLT_STALL_TIMEOUT", "COLT_MEM_BUDGET", "COLT_DUMP_DIR",
                "COLT_TELEMETRY_PORT", "COLT_HISTORY"):
        env.pop(var, None)
    return env


def _campaign_cmd(cache_dir: str, jobs: int, ids=CAMPAIGN_IDS, extra=()):
    return [
        sys.executable, "-m", "repro.experiments", *ids,
        "--campaign", "--jobs", str(jobs), "--cache-dir", cache_dir,
        *extra,
    ]


def _statuses(cache_dir: str) -> dict:
    manifest = Path(cache_dir) / "campaign" / "manifest.json"
    data = json.loads(manifest.read_text(encoding="utf-8"))
    return {
        exp_id: entry["status"]
        for exp_id, entry in data["entries"].items()
    }


def _tables(cache_dir: str) -> dict:
    tables_dir = Path(cache_dir) / "campaign" / "tables"
    return {
        path.name: path.read_bytes()
        for path in sorted(tables_dir.glob("*.txt"))
    }


def _campaign_check(args) -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="colt-campaign-") as tmp:
        clean_dir = os.path.join(tmp, "clean")
        kill_dir = os.path.join(tmp, "killed")
        stall_dir = os.path.join(tmp, "stall")
        dump_dir = os.path.join(tmp, "dumps")

        print(f"clean campaign {' '.join(CAMPAIGN_IDS)} (jobs={args.jobs})")
        result = subprocess.run(
            _campaign_cmd(clean_dir, args.jobs),
            env=_campaign_env(), capture_output=True, text=True,
        )
        if result.returncode != 0:
            print(f"FAIL: clean campaign exited {result.returncode}\n"
                  f"{result.stdout}{result.stderr}", file=sys.stderr)
            return 1
        clean_tables = _tables(clean_dir)
        if sorted(clean_tables) != [f"{i}.txt" for i in sorted(CAMPAIGN_IDS)]:
            print(f"FAIL: clean campaign table dumps incomplete: "
                  f"{sorted(clean_tables)}", file=sys.stderr)
            return 1
        print(f"  {len(clean_tables)} table dumps journaled done")

        # Kill phase: a parent-side hold on entry 1 opens a window in
        # which the campaign is journaled *running*; SIGTERM there must
        # wind down gracefully with the resumable status.
        print("killed campaign (SIGTERM while entry 1 is running)")
        proc = subprocess.Popen(
            _campaign_cmd(kill_dir, args.jobs),
            env=_campaign_env(
                f"delay@campaign:1/{HOLD_SECONDS:g}"
            ),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        first_table = Path(kill_dir) / "campaign" / "tables" / \
            f"{CAMPAIGN_IDS[0]}.txt"
        deadline = time.monotonic() + 300.0
        while not first_table.exists():
            if proc.poll() is not None or time.monotonic() > deadline:
                out = proc.communicate()[0]
                print(f"FAIL: campaign ended (rc={proc.returncode}) "
                      f"before it could be killed\n{out}", file=sys.stderr)
                return 1
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        out = proc.communicate(timeout=120.0)[0]
        if proc.returncode != SHUTDOWN_EXIT_CODE:
            print(f"FAIL: killed campaign exited {proc.returncode}, "
                  f"expected {SHUTDOWN_EXIT_CODE}\n{out}", file=sys.stderr)
            failures += 1
        statuses = _statuses(kill_dir)
        if statuses.get(CAMPAIGN_IDS[0]) != "done" or any(
            status == "running" for status in statuses.values()
        ):
            print(f"FAIL: journal inconsistent after kill: {statuses}",
                  file=sys.stderr)
            failures += 1
        else:
            print(f"  exit {SHUTDOWN_EXIT_CODE}, journal consistent: "
                  f"{statuses}")

        print("resumed campaign (--resume over the killed journal)")
        result = subprocess.run(
            _campaign_cmd(kill_dir, args.jobs, extra=("--resume",)),
            env=_campaign_env(), capture_output=True, text=True,
        )
        if result.returncode != 0:
            print(f"FAIL: resume exited {result.returncode}\n"
                  f"{result.stdout}{result.stderr}", file=sys.stderr)
            failures += 1
        statuses = _statuses(kill_dir)
        if any(status != "done" for status in statuses.values()):
            print(f"FAIL: resume left unfinished entries: {statuses}",
                  file=sys.stderr)
            failures += 1
        if _tables(kill_dir) != clean_tables:
            print("FAIL: resumed tables differ from clean campaign",
                  file=sys.stderr)
            failures += 1
        if not failures:
            print("  journal all done, tables byte-identical to clean")

        print(f"stalled campaign (capture sleeps "
              f"{STALL_DELAY_SECONDS:g}s, watchdog at "
              f"{STALL_TIMEOUT_SECONDS:g}s)")
        result = subprocess.run(
            _campaign_cmd(
                stall_dir, args.jobs, ids=(CAMPAIGN_IDS[0],),
                extra=(
                    "--stall-timeout", f"{STALL_TIMEOUT_SECONDS:g}",
                    "--dump-dir", dump_dir,
                ),
            ),
            env=_campaign_env(
                f"delay@capture:0/{STALL_DELAY_SECONDS:g}"
            ),
            capture_output=True, text=True,
        )
        if result.returncode != 0:
            print(f"FAIL: stalled campaign exited {result.returncode}\n"
                  f"{result.stdout}{result.stderr}", file=sys.stderr)
            failures += 1
        dumps = sorted(Path(dump_dir).glob("stall-*.txt"))
        if not dumps:
            print("FAIL: stall watchdog left no stack-dump artifact "
                  f"under {dump_dir}", file=sys.stderr)
            failures += 1
        stall_key = f"{CAMPAIGN_IDS[0]}.txt"
        if _tables(stall_dir).get(stall_key) != clean_tables[stall_key]:
            print("FAIL: stalled campaign table differs from clean run",
                  file=sys.stderr)
            failures += 1
        if dumps and not failures:
            print(f"  recovered bit-identically; {len(dumps)} stall "
                  f"dump(s), e.g. {dumps[0].name}")

    if failures:
        print(f"campaign check FAILED ({failures} divergence(s))",
              file=sys.stderr)
        return 1
    print("campaign check passed: kill/resume/stall all converged "
          "on the clean tables")
    return 0


#: The always-printed line that announces the bound telemetry port
#: (the only way to learn it when ``--telemetry-port 0`` is used).
TELEMETRY_LINE = re.compile(r"telemetry: http://127\.0\.0\.1:(\d+)/")


def _history_records(cache_dir: str) -> list:
    path = Path(cache_dir) / "history" / "history.jsonl"
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def _get(port: int, route: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{route}", timeout=timeout
    ) as response:
        return response.read()


def _telemetry_check(args) -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="colt-telemetry-") as tmp:
        cache_dir = os.path.join(tmp, "cache")

        # Kill phase: serve telemetry while entry 1 is held open, probe
        # all three endpoints live, then SIGTERM. The server must come
        # down with the process (exit 75, port released) and the killed
        # run must still leave a non-ok history record.
        print("telemetry campaign (SIGTERM while serving --telemetry-port 0)")
        proc = subprocess.Popen(
            _campaign_cmd(
                cache_dir, args.jobs, extra=("--telemetry-port", "0")
            ),
            env=_campaign_env(f"delay@campaign:1/{HOLD_SECONDS:g}"),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        lines: list = []
        port_found = threading.Event()
        port_box: list = []

        def _read_stdout() -> None:
            for line in proc.stdout:
                lines.append(line)
                match = TELEMETRY_LINE.search(line)
                if match and not port_box:
                    port_box.append(int(match.group(1)))
                    port_found.set()
            port_found.set()  # EOF: stop waiters even without a match

        reader = threading.Thread(target=_read_stdout, daemon=True)
        reader.start()
        port_found.wait(60.0)
        if not port_box:
            proc.terminate()
            proc.wait(timeout=60.0)
            reader.join(timeout=10.0)
            print("FAIL: campaign never announced its telemetry port\n"
                  + "".join(lines), file=sys.stderr)
            return 1
        port = port_box[0]

        first_table = Path(cache_dir) / "campaign" / "tables" / \
            f"{CAMPAIGN_IDS[0]}.txt"
        deadline = time.monotonic() + 300.0
        while not first_table.exists():
            if proc.poll() is not None or time.monotonic() > deadline:
                reader.join(timeout=10.0)
                print(f"FAIL: campaign ended (rc={proc.returncode}) "
                      f"before it could be probed\n{''.join(lines)}",
                      file=sys.stderr)
                return 1
            time.sleep(0.05)

        try:
            if _get(port, "/healthz").strip() != b"ok":
                print("FAIL: /healthz did not answer ok", file=sys.stderr)
                failures += 1
            progress = json.loads(_get(port, "/progress"))
            if "phase" not in progress or "campaign" not in progress:
                print(f"FAIL: /progress incomplete while running: "
                      f"{sorted(progress)}", file=sys.stderr)
                failures += 1
            metrics = _get(port, "/metrics").decode("utf-8")
            if "colt_campaign_experiments" not in metrics:
                print("FAIL: live /metrics lacks campaign counters",
                      file=sys.stderr)
                failures += 1
        except (urllib.error.URLError, OSError) as exc:
            print(f"FAIL: live telemetry probe failed: {exc}",
                  file=sys.stderr)
            failures += 1
        if not failures:
            print(f"  live probes ok on port {port} "
                  f"(phase={progress.get('phase')!r})")

        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=120.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            print("FAIL: campaign did not exit within 120s of SIGTERM "
                  "(telemetry thread wedged the shutdown?)",
                  file=sys.stderr)
            failures += 1
        reader.join(timeout=10.0)
        if proc.returncode != SHUTDOWN_EXIT_CODE:
            print(f"FAIL: killed campaign exited {proc.returncode}, "
                  f"expected {SHUTDOWN_EXIT_CODE}\n{''.join(lines)}",
                  file=sys.stderr)
            failures += 1
        try:
            _get(port, "/healthz", timeout=2.0)
            print(f"FAIL: port {port} still answering after exit "
                  "(telemetry thread leaked)", file=sys.stderr)
            failures += 1
        except (urllib.error.URLError, OSError):
            pass  # refused/reset: the server came down with the process

        records = _history_records(cache_dir)
        if not records:
            print("FAIL: killed run appended no history record",
                  file=sys.stderr)
            failures += 1
        else:
            last = records[-1]
            if last.get("status") == "ok" or not last.get("telemetry"):
                print(f"FAIL: killed run's history record is "
                      f"status={last.get('status')!r} "
                      f"telemetry={last.get('telemetry')!r}; expected a "
                      "non-ok telemetry record", file=sys.stderr)
                failures += 1
            else:
                print(f"  exit {SHUTDOWN_EXIT_CODE}, port released, "
                      f"history recorded status={last['status']!r}")

        print("resumed campaign (--resume, telemetry served again)")
        result = subprocess.run(
            _campaign_cmd(
                cache_dir, args.jobs,
                extra=("--resume", "--telemetry-port", "0"),
            ),
            env=_campaign_env(), capture_output=True, text=True,
        )
        if result.returncode != 0:
            print(f"FAIL: resume exited {result.returncode}\n"
                  f"{result.stdout}{result.stderr}", file=sys.stderr)
            failures += 1
        statuses = _statuses(cache_dir)
        if any(status != "done" for status in statuses.values()):
            print(f"FAIL: resume left unfinished entries: {statuses}",
                  file=sys.stderr)
            failures += 1
        resumed = _history_records(cache_dir)
        if len(resumed) != len(records) + 1 or \
                resumed[-1].get("status") != "ok":
            print(f"FAIL: resume did not append an ok record "
                  f"({len(records)} -> {len(resumed)} records, newest "
                  f"{resumed[-1].get('status')!r})"
                  if resumed else "FAIL: resume left no history",
                  file=sys.stderr)
            failures += 1
        elif not failures:
            print(f"  journal all done; history now {len(resumed)} "
                  "record(s), newest status='ok'")

    if failures:
        print(f"telemetry check FAILED ({failures} divergence(s))",
              file=sys.stderr)
        return 1
    print("telemetry check passed: clean SIGTERM shutdown, history "
          "records for killed and resumed runs")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Verify fault-injected runs recover bit-identical "
                    "results (fig18, QUICK scale)."
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for all three runs (default: 2)",
    )
    parser.add_argument(
        "--faults", default=DEFAULT_PLAN, metavar="PLAN",
        help=f"fault plan for the chaos run (default: {DEFAULT_PLAN!r})",
    )
    parser.add_argument(
        "--campaign", action="store_true",
        help="check the campaign journal instead: clean run, SIGTERM "
             "kill, --resume to byte-identical tables, stall-watchdog "
             "dump",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="check the telemetry plane instead: live endpoint probes, "
             "clean server shutdown on SIGTERM, history records for "
             "killed and resumed runs",
    )
    args = parser.parse_args(argv)
    if args.campaign:
        return _campaign_check(args)
    if args.telemetry:
        return _telemetry_check(args)

    policy = RetryPolicy(max_retries=3, backoff_s=0.05, timeout_s=600.0)
    failures = 0

    with tempfile.TemporaryDirectory(prefix="colt-chaos-") as tmp:
        clean_dir = os.path.join(tmp, "clean")
        chaos_dir = os.path.join(tmp, "chaos")

        print(f"clean run (jobs={args.jobs})")
        clean = ExperimentRunner(
            jobs=args.jobs, store=ResultStore(clean_dir), policy=policy
        )
        clean_table = _run_pipeline(clean)

        plan = FaultPlan.parse(args.faults)
        print(f"chaos run (faults: {plan.render()})")
        chaos = ExperimentRunner(
            jobs=args.jobs,
            store=ResultStore(chaos_dir, faults=plan),
            policy=policy,
            faults=plan,
        )
        chaos_table = _run_pipeline(chaos)
        failures += _compare("chaos", clean, chaos, clean_table, chaos_table)
        resilience = chaos.resilience_summary()
        if resilience is None:
            print("FAIL: chaos run reported no resilience activity "
                  "(did the plan fire?)", file=sys.stderr)
            failures += 1
        else:
            print("  resilience: " + ", ".join(
                f"{v} {k}" for k, v in resilience.items() if v))

        print("resume run (fault-free, over the corrupted chaos store)")
        resume_store = ResultStore(chaos_dir)
        resume = ExperimentRunner(
            jobs=args.jobs, store=resume_store, policy=policy
        )
        resume_table = _run_pipeline(resume)
        failures += _compare(
            "resume", clean, resume, clean_table, resume_table
        )
        counts = resume_store.counters.as_dict()
        if counts["quarantines"] != CORRUPTED_WRITES:
            print(
                f"FAIL: expected {CORRUPTED_WRITES} quarantined entries, "
                f"got {counts['quarantines']:.0f}",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"  quarantined {counts['quarantines']:.0f} corrupted "
                  f"entries, {counts['hits']:.0f} warm hits")
        quarantined = len(
            list((resume_store.root / QUARANTINE_DIR).glob("*.pkl"))
        )
        if quarantined != CORRUPTED_WRITES:
            print(
                f"FAIL: quarantine dir holds {quarantined} entries, "
                f"expected {CORRUPTED_WRITES}",
                file=sys.stderr,
            )
            failures += 1
        # Zero leakage: after the resume repaired the store, every live
        # entry must decode -- a second warm pass sees only hits.
        verify_store = ResultStore(chaos_dir)
        for config in clean._cache:
            if verify_store.load(config) is None:
                print(
                    "FAIL: repaired store still missing/corrupt for "
                    f"{config.benchmark}/{config.design.value}",
                    file=sys.stderr,
                )
                failures += 1
        verify_counts = verify_store.counters.as_dict()
        if verify_counts["quarantines"] or verify_counts["misses"]:
            print(
                "FAIL: repaired store not fully warm "
                f"({verify_counts['misses']:.0f} misses, "
                f"{verify_counts['quarantines']:.0f} quarantines)",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"  repaired store fully warm: {verify_counts['hits']:.0f} "
                "hits, no residual corruption"
            )

    if failures:
        print(f"chaos check FAILED ({failures} divergence(s))",
              file=sys.stderr)
        return 1
    print("chaos check passed: all faulted runs bit-identical to clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
