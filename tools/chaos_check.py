"""Chaos invariant check: faulted runs must be bit-identical to clean.

Runs the fig18 QUICK pipeline three times and compares results:

1. **clean** -- no faults, cold temporary store A: the baseline table
   and result set.
2. **chaos** -- cold temporary store B with a ``COLT_FAULTS`` plan that
   crashes a capture worker, raises in a replay task, and tears/flips
   two store writes. The retry/recovery machinery must absorb all of it
   and produce the *same* table and the same per-config results.
3. **resume** -- a fresh fault-free runner over store B, whose on-disk
   entries include the two corrupted writes. The hardened load path
   must quarantine exactly those entries (never a silent unlink, never
   a crash), recompute them, and again match the clean results.

Exit status is non-zero on any divergence; the chaos CI job runs
``python tools/chaos_check.py --jobs 2``. Because injected faults only
kill/delay/corrupt -- they never feed a number into a simulation --
any mismatch here is a real determinism or recovery bug.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.sim.faults import FaultPlan  # noqa: E402
from repro.sim.resilience import RetryPolicy  # noqa: E402
from repro.sim.runner import ExperimentRunner  # noqa: E402
from repro.sim.store import QUARANTINE_DIR, ResultStore  # noqa: E402
from repro.experiments.registry import get_experiment  # noqa: E402
from repro.experiments.scale import QUICK  # noqa: E402

#: One worker crash, one task exception, one torn and one bit-flipped
#: store write -- every fault kind the plan grammar knows.
DEFAULT_PLAN = (
    "crash@capture:0;raise@replay:1;torn@store.write:0;corrupt@store.write:2"
)

#: Store-write indices DEFAULT_PLAN corrupts (drives the expected
#: quarantine count of the resume phase).
CORRUPTED_WRITES = 2

FIGURE = "fig18"


def _run_pipeline(runner: ExperimentRunner) -> str:
    """Run the figure under ``runner``; return its formatted table."""
    return get_experiment(FIGURE).run(QUICK, runner).format_table()


def _compare(name: str, clean: ExperimentRunner, other: ExperimentRunner,
             clean_table: str, other_table: str) -> int:
    failures = 0
    if other_table != clean_table:
        print(f"FAIL: {name} table differs from clean run", file=sys.stderr)
        failures += 1
    if other._cache != clean._cache:
        differing = [
            config
            for config, result in clean._cache.items()
            if other._cache.get(config) != result
        ]
        print(
            f"FAIL: {name} results differ from clean run for "
            f"{len(differing)} config(s): "
            + "; ".join(
                f"{c.benchmark}/{c.design.value}" for c in differing[:4]
            ),
            file=sys.stderr,
        )
        failures += 1
    if not failures:
        print(f"ok: {name} results bit-identical to clean run")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Verify fault-injected runs recover bit-identical "
                    "results (fig18, QUICK scale)."
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for all three runs (default: 2)",
    )
    parser.add_argument(
        "--faults", default=DEFAULT_PLAN, metavar="PLAN",
        help=f"fault plan for the chaos run (default: {DEFAULT_PLAN!r})",
    )
    args = parser.parse_args(argv)

    policy = RetryPolicy(max_retries=3, backoff_s=0.05, timeout_s=600.0)
    failures = 0

    with tempfile.TemporaryDirectory(prefix="colt-chaos-") as tmp:
        clean_dir = os.path.join(tmp, "clean")
        chaos_dir = os.path.join(tmp, "chaos")

        print(f"clean run (jobs={args.jobs})")
        clean = ExperimentRunner(
            jobs=args.jobs, store=ResultStore(clean_dir), policy=policy
        )
        clean_table = _run_pipeline(clean)

        plan = FaultPlan.parse(args.faults)
        print(f"chaos run (faults: {plan.render()})")
        chaos = ExperimentRunner(
            jobs=args.jobs,
            store=ResultStore(chaos_dir, faults=plan),
            policy=policy,
            faults=plan,
        )
        chaos_table = _run_pipeline(chaos)
        failures += _compare("chaos", clean, chaos, clean_table, chaos_table)
        resilience = chaos.resilience_summary()
        if resilience is None:
            print("FAIL: chaos run reported no resilience activity "
                  "(did the plan fire?)", file=sys.stderr)
            failures += 1
        else:
            print("  resilience: " + ", ".join(
                f"{v} {k}" for k, v in resilience.items() if v))

        print("resume run (fault-free, over the corrupted chaos store)")
        resume_store = ResultStore(chaos_dir)
        resume = ExperimentRunner(
            jobs=args.jobs, store=resume_store, policy=policy
        )
        resume_table = _run_pipeline(resume)
        failures += _compare(
            "resume", clean, resume, clean_table, resume_table
        )
        counts = resume_store.counters.as_dict()
        if counts["quarantines"] != CORRUPTED_WRITES:
            print(
                f"FAIL: expected {CORRUPTED_WRITES} quarantined entries, "
                f"got {counts['quarantines']:.0f}",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"  quarantined {counts['quarantines']:.0f} corrupted "
                  f"entries, {counts['hits']:.0f} warm hits")
        quarantined = len(
            list((resume_store.root / QUARANTINE_DIR).glob("*.pkl"))
        )
        if quarantined != CORRUPTED_WRITES:
            print(
                f"FAIL: quarantine dir holds {quarantined} entries, "
                f"expected {CORRUPTED_WRITES}",
                file=sys.stderr,
            )
            failures += 1
        # Zero leakage: after the resume repaired the store, every live
        # entry must decode -- a second warm pass sees only hits.
        verify_store = ResultStore(chaos_dir)
        for config in clean._cache:
            if verify_store.load(config) is None:
                print(
                    "FAIL: repaired store still missing/corrupt for "
                    f"{config.benchmark}/{config.design.value}",
                    file=sys.stderr,
                )
                failures += 1
        verify_counts = verify_store.counters.as_dict()
        if verify_counts["quarantines"] or verify_counts["misses"]:
            print(
                "FAIL: repaired store not fully warm "
                f"({verify_counts['misses']:.0f} misses, "
                f"{verify_counts['quarantines']:.0f} quarantines)",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"  repaired store fully warm: {verify_counts['hits']:.0f} "
                "hits, no residual corruption"
            )

    if failures:
        print(f"chaos check FAILED ({failures} divergence(s))",
              file=sys.stderr)
        return 1
    print("chaos check passed: all faulted runs bit-identical to clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
