"""Chaos invariant check: faulted runs must be bit-identical to clean.

Every mode drives the fig18 QUICK pipeline through some injected
failure and proves the recovery machinery converges on the clean
results. ``--list-modes`` enumerates them:

``store`` (default)
    Three in-process runs: **clean** (cold store A), **chaos** (cold
    store B under a ``COLT_FAULTS`` plan that crashes a capture worker,
    raises in a replay task, and tears/flips two store writes), and
    **resume** (a fault-free runner over the corrupted store B, which
    must quarantine exactly the corrupt entries and recompute them).

``campaign`` (``--campaign``)
    End-to-end campaign journal invariant via
    ``python -m repro.experiments --campaign`` subprocesses: a clean
    run, a SIGTERM kill mid-campaign (resumable exit status, consistent
    write-ahead journal), a ``--resume`` to byte-identical tables, and
    a stall-watchdog run that must dump stacks yet converge.

``telemetry`` (``--telemetry``)
    The telemetry plane's crash discipline: live /healthz, /progress
    and /metrics probes mid-campaign, clean server shutdown on SIGTERM
    (exit 75, port released), and ``colt-history-v1`` records for both
    the killed and the resumed run.

``distributed`` (``--distributed``)
    The coordinator/worker layer (``--workers 3``): a clean distributed
    campaign, a run where every worker is hard-killed on its first
    assignment (``worker-lost@dist``), a run with a fingerprint-skewed
    worker whose shard must be quarantined (``shard-desync@dist``, plus
    torn shard-journal writes), and a SIGTERM kill + ``--resume``
    cycle -- all required to produce tables byte-identical to the clean
    single-host baseline.

Exit status is non-zero on any divergence. Because injected faults only
kill/delay/corrupt -- they never feed a number into a simulation -- any
mismatch here is a real determinism or recovery bug.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.sim.campaign import SHUTDOWN_EXIT_CODE  # noqa: E402
from repro.sim.dist.coordinator import DIST_QUARANTINE_DIR  # noqa: E402
from repro.sim.faults import FaultPlan  # noqa: E402
from repro.sim.resilience import RetryPolicy  # noqa: E402
from repro.sim.runner import ExperimentRunner  # noqa: E402
from repro.sim.store import QUARANTINE_DIR, ResultStore  # noqa: E402
from repro.experiments.registry import get_experiment  # noqa: E402
from repro.experiments.scale import QUICK  # noqa: E402

#: One worker crash, one task exception, one torn and one bit-flipped
#: store write -- every fault kind the plan grammar knows.
DEFAULT_PLAN = (
    "crash@capture:0;raise@replay:1;torn@store.write:0;corrupt@store.write:2"
)

#: Store-write indices DEFAULT_PLAN corrupts (drives the expected
#: quarantine count of the resume phase).
CORRUPTED_WRITES = 2

FIGURE = "fig18"

#: Experiments for the campaign check. fig19 replays fig18's scenario
#: groups, so the second campaign entry is cheap but still exercises a
#: distinct journal transition.
CAMPAIGN_IDS = ("fig18", "fig19")

#: Parent-process hold on campaign entry 1: a window in which the
#: SIGTERM deterministically lands between the journal's
#: ``mark_running`` and the experiment's first task, so the kill always
#: interrupts a running campaign rather than racing its completion.
HOLD_SECONDS = 10.0

#: Stall-watchdog phase: the first capture sleeps DELAY, the watchdog
#: trips at STALL (well above a healthy QUICK capture's ~2s) and
#: requeues it; the retried attempt escapes the x1 fault.
STALL_DELAY_SECONDS = 12.0
STALL_TIMEOUT_SECONDS = 4.0

#: Worker count for the distributed mode.
DIST_WORKERS = 3

#: Every worker dies on its first assignment: whatever the (content-
#: hash-deterministic, but constants-dependent) group distribution is,
#: at least one worker has work, so a loss always fires and the
#: reassignment ladder is driven all the way to the inline fallback.
DIST_LOST_PLAN = "worker-lost@dist:0,1,2"

#: One fingerprint-skewed worker (desync fires at hello, so any index
#: works), plus torn first journal writes on the healthy shards.
DIST_DESYNC_PLAN = "shard-desync@dist:2;torn@dist.journal:0"


def _run_pipeline(runner: ExperimentRunner) -> str:
    """Run the figure under ``runner``; return its formatted table."""
    return get_experiment(FIGURE).run(QUICK, runner).format_table()


def _compare(name: str, clean: ExperimentRunner, other: ExperimentRunner,
             clean_table: str, other_table: str) -> int:
    failures = 0
    if other_table != clean_table:
        print(f"FAIL: {name} table differs from clean run", file=sys.stderr)
        failures += 1
    if other._cache != clean._cache:
        differing = [
            config
            for config, result in clean._cache.items()
            if other._cache.get(config) != result
        ]
        print(
            f"FAIL: {name} results differ from clean run for "
            f"{len(differing)} config(s): "
            + "; ".join(
                f"{c.benchmark}/{c.design.value}" for c in differing[:4]
            ),
            file=sys.stderr,
        )
        failures += 1
    if not failures:
        print(f"ok: {name} results bit-identical to clean run")
    return failures


# ----------------------------------------------------------------------
# Shared campaign-subprocess helpers (used by every subprocess mode).
# ----------------------------------------------------------------------

def _campaign_env(faults: str = "") -> dict:
    """Subprocess environment: QUICK scale, src on path, chosen faults."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_SCALE"] = "quick"
    if faults:
        env["COLT_FAULTS"] = faults
    else:
        env.pop("COLT_FAULTS", None)
    # The phases below pass watchdog/telemetry/distribution knobs
    # explicitly; ambient settings must not leak in.
    for var in ("COLT_STALL_TIMEOUT", "COLT_MEM_BUDGET", "COLT_DUMP_DIR",
                "COLT_TELEMETRY_PORT", "COLT_HISTORY", "COLT_WORKERS",
                "COLT_HEARTBEAT_TIMEOUT"):
        env.pop(var, None)
    return env


def _campaign_cmd(cache_dir: str, jobs: int, ids=CAMPAIGN_IDS, extra=()):
    return [
        sys.executable, "-m", "repro.experiments", *ids,
        "--campaign", "--jobs", str(jobs), "--cache-dir", cache_dir,
        *extra,
    ]


def _statuses(cache_dir: str) -> dict:
    manifest = Path(cache_dir) / "campaign" / "manifest.json"
    data = json.loads(manifest.read_text(encoding="utf-8"))
    return {
        exp_id: entry["status"]
        for exp_id, entry in data["entries"].items()
    }


def _tables(cache_dir: str) -> dict:
    tables_dir = Path(cache_dir) / "campaign" / "tables"
    return {
        path.name: path.read_bytes()
        for path in sorted(tables_dir.glob("*.txt"))
    }


def _checked_run(label: str, cache_dir: str, jobs: int, faults: str = "",
                 ids=CAMPAIGN_IDS, extra=()):
    """Run one campaign subprocess; None (after a FAIL line) on rc != 0.

    The shared run half of every mode's run-and-compare step: build the
    command, scrub the environment, capture output, complain uniformly.
    """
    result = subprocess.run(
        _campaign_cmd(cache_dir, jobs, ids=ids, extra=extra),
        env=_campaign_env(faults), capture_output=True, text=True,
    )
    if result.returncode != 0:
        print(f"FAIL: {label} exited {result.returncode}\n"
              f"{result.stdout}{result.stderr}", file=sys.stderr)
        return None
    return result


def _compare_tables(label: str, cache_dir: str, clean_tables: dict) -> int:
    """The shared compare half: table dumps must be byte-identical."""
    tables = _tables(cache_dir)
    if tables != clean_tables:
        differing = sorted(
            set(tables) ^ set(clean_tables)
            | {name for name in tables
               if clean_tables.get(name) != tables[name]}
        )
        print(f"FAIL: {label} tables differ from clean campaign: "
              f"{differing}", file=sys.stderr)
        return 1
    print(f"  {label}: tables byte-identical to clean campaign")
    return 0


def _kill_after_first_table(label: str, cache_dir: str, jobs: int,
                            faults: str, extra=()):
    """Start a campaign and SIGTERM it once entry 0's table lands.

    ``faults`` should hold entry 1 open (``delay@campaign:1/...``) so
    the signal deterministically interrupts a *running* campaign.
    Returns ``(returncode, combined_output)``, or None (after a FAIL
    line) when the campaign ended before the window opened.
    """
    proc = subprocess.Popen(
        _campaign_cmd(cache_dir, jobs, extra=extra),
        env=_campaign_env(faults),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    first_table = Path(cache_dir) / "campaign" / "tables" / \
        f"{CAMPAIGN_IDS[0]}.txt"
    deadline = time.monotonic() + 300.0
    while not first_table.exists():
        if proc.poll() is not None or time.monotonic() > deadline:
            out = proc.communicate()[0]
            print(f"FAIL: {label} ended (rc={proc.returncode}) before "
                  f"it could be killed\n{out}", file=sys.stderr)
            return None
        time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    out = proc.communicate(timeout=120.0)[0]
    return proc.returncode, out


def _check_killed(label: str, rc: int, out: str, cache_dir: str) -> int:
    """A killed campaign must exit resumable with a consistent journal."""
    failures = 0
    if rc != SHUTDOWN_EXIT_CODE:
        print(f"FAIL: {label} exited {rc}, expected "
              f"{SHUTDOWN_EXIT_CODE}\n{out}", file=sys.stderr)
        failures += 1
    statuses = _statuses(cache_dir)
    if statuses.get(CAMPAIGN_IDS[0]) != "done" or any(
        status == "running" for status in statuses.values()
    ):
        print(f"FAIL: journal inconsistent after {label}: {statuses}",
              file=sys.stderr)
        failures += 1
    if not failures:
        print(f"  exit {SHUTDOWN_EXIT_CODE}, journal consistent: "
              f"{statuses}")
    return failures


def _check_resumed(label: str, cache_dir: str) -> int:
    """After --resume, every journal entry must be done."""
    statuses = _statuses(cache_dir)
    if any(status != "done" for status in statuses.values()):
        print(f"FAIL: {label} left unfinished entries: {statuses}",
              file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Modes.
# ----------------------------------------------------------------------

def _store_check(args) -> int:
    policy = RetryPolicy(max_retries=3, backoff_s=0.05, timeout_s=600.0)
    failures = 0

    with tempfile.TemporaryDirectory(prefix="colt-chaos-") as tmp:
        clean_dir = os.path.join(tmp, "clean")
        chaos_dir = os.path.join(tmp, "chaos")

        print(f"clean run (jobs={args.jobs})")
        clean = ExperimentRunner(
            jobs=args.jobs, store=ResultStore(clean_dir), policy=policy
        )
        clean_table = _run_pipeline(clean)

        plan = FaultPlan.parse(args.faults)
        print(f"chaos run (faults: {plan.render()})")
        chaos = ExperimentRunner(
            jobs=args.jobs,
            store=ResultStore(chaos_dir, faults=plan),
            policy=policy,
            faults=plan,
        )
        chaos_table = _run_pipeline(chaos)
        failures += _compare("chaos", clean, chaos, clean_table, chaos_table)
        resilience = chaos.resilience_summary()
        if resilience is None:
            print("FAIL: chaos run reported no resilience activity "
                  "(did the plan fire?)", file=sys.stderr)
            failures += 1
        else:
            print("  resilience: " + ", ".join(
                f"{v} {k}" for k, v in resilience.items() if v))

        print("resume run (fault-free, over the corrupted chaos store)")
        resume_store = ResultStore(chaos_dir)
        resume = ExperimentRunner(
            jobs=args.jobs, store=resume_store, policy=policy
        )
        resume_table = _run_pipeline(resume)
        failures += _compare(
            "resume", clean, resume, clean_table, resume_table
        )
        counts = resume_store.counters.as_dict()
        if counts["quarantines"] != CORRUPTED_WRITES:
            print(
                f"FAIL: expected {CORRUPTED_WRITES} quarantined entries, "
                f"got {counts['quarantines']:.0f}",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"  quarantined {counts['quarantines']:.0f} corrupted "
                  f"entries, {counts['hits']:.0f} warm hits")
        quarantined = len(
            list((resume_store.root / QUARANTINE_DIR).glob("*.pkl"))
        )
        if quarantined != CORRUPTED_WRITES:
            print(
                f"FAIL: quarantine dir holds {quarantined} entries, "
                f"expected {CORRUPTED_WRITES}",
                file=sys.stderr,
            )
            failures += 1
        # Zero leakage: after the resume repaired the store, every live
        # entry must decode -- a second warm pass sees only hits.
        verify_store = ResultStore(chaos_dir)
        for config in clean._cache:
            if verify_store.load(config) is None:
                print(
                    "FAIL: repaired store still missing/corrupt for "
                    f"{config.benchmark}/{config.design.value}",
                    file=sys.stderr,
                )
                failures += 1
        verify_counts = verify_store.counters.as_dict()
        if verify_counts["quarantines"] or verify_counts["misses"]:
            print(
                "FAIL: repaired store not fully warm "
                f"({verify_counts['misses']:.0f} misses, "
                f"{verify_counts['quarantines']:.0f} quarantines)",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"  repaired store fully warm: {verify_counts['hits']:.0f} "
                "hits, no residual corruption"
            )

    if failures:
        print(f"chaos check FAILED ({failures} divergence(s))",
              file=sys.stderr)
        return 1
    print("chaos check passed: all faulted runs bit-identical to clean")
    return 0


def _campaign_check(args) -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="colt-campaign-") as tmp:
        clean_dir = os.path.join(tmp, "clean")
        kill_dir = os.path.join(tmp, "killed")
        stall_dir = os.path.join(tmp, "stall")
        dump_dir = os.path.join(tmp, "dumps")

        print(f"clean campaign {' '.join(CAMPAIGN_IDS)} (jobs={args.jobs})")
        if _checked_run("clean campaign", clean_dir, args.jobs) is None:
            return 1
        clean_tables = _tables(clean_dir)
        if sorted(clean_tables) != [f"{i}.txt" for i in sorted(CAMPAIGN_IDS)]:
            print(f"FAIL: clean campaign table dumps incomplete: "
                  f"{sorted(clean_tables)}", file=sys.stderr)
            return 1
        print(f"  {len(clean_tables)} table dumps journaled done")

        # Kill phase: a parent-side hold on entry 1 opens a window in
        # which the campaign is journaled *running*; SIGTERM there must
        # wind down gracefully with the resumable status.
        print("killed campaign (SIGTERM while entry 1 is running)")
        killed = _kill_after_first_table(
            "killed campaign", kill_dir, args.jobs,
            f"delay@campaign:1/{HOLD_SECONDS:g}",
        )
        if killed is None:
            return 1
        failures += _check_killed("killed campaign", *killed, kill_dir)

        print("resumed campaign (--resume over the killed journal)")
        resumed = _checked_run(
            "resume", kill_dir, args.jobs, extra=("--resume",)
        )
        if resumed is None:
            failures += 1
        failures += _check_resumed("resume", kill_dir)
        failures += _compare_tables("resume", kill_dir, clean_tables)

        print(f"stalled campaign (capture sleeps "
              f"{STALL_DELAY_SECONDS:g}s, watchdog at "
              f"{STALL_TIMEOUT_SECONDS:g}s)")
        stalled = _checked_run(
            "stalled campaign", stall_dir, args.jobs,
            faults=f"delay@capture:0/{STALL_DELAY_SECONDS:g}",
            ids=(CAMPAIGN_IDS[0],),
            extra=(
                "--stall-timeout", f"{STALL_TIMEOUT_SECONDS:g}",
                "--dump-dir", dump_dir,
            ),
        )
        if stalled is None:
            failures += 1
        dumps = sorted(Path(dump_dir).glob("stall-*.txt"))
        if not dumps:
            print("FAIL: stall watchdog left no stack-dump artifact "
                  f"under {dump_dir}", file=sys.stderr)
            failures += 1
        stall_key = f"{CAMPAIGN_IDS[0]}.txt"
        if _tables(stall_dir).get(stall_key) != clean_tables[stall_key]:
            print("FAIL: stalled campaign table differs from clean run",
                  file=sys.stderr)
            failures += 1
        if dumps and not failures:
            print(f"  recovered bit-identically; {len(dumps)} stall "
                  f"dump(s), e.g. {dumps[0].name}")

    if failures:
        print(f"campaign check FAILED ({failures} divergence(s))",
              file=sys.stderr)
        return 1
    print("campaign check passed: kill/resume/stall all converged "
          "on the clean tables")
    return 0


def _distributed_check(args) -> int:
    failures = 0
    workers_extra = ("--workers", str(DIST_WORKERS))
    with tempfile.TemporaryDirectory(prefix="colt-dist-") as tmp:
        clean_dir = os.path.join(tmp, "clean")
        dist_dir = os.path.join(tmp, "dist-clean")
        lost_dir = os.path.join(tmp, "lost")
        desync_dir = os.path.join(tmp, "desync")
        kill_dir = os.path.join(tmp, "killed")

        print(f"clean single-host campaign {' '.join(CAMPAIGN_IDS)} "
              f"(jobs={args.jobs})")
        if _checked_run("clean campaign", clean_dir, args.jobs) is None:
            return 1
        clean_tables = _tables(clean_dir)
        print(f"  {len(clean_tables)} baseline table dumps")

        print(f"distributed campaign (--workers {DIST_WORKERS})")
        if _checked_run(
            "distributed campaign", dist_dir, args.jobs,
            extra=workers_extra,
        ) is None:
            failures += 1
        else:
            failures += _compare_tables(
                "distributed", dist_dir, clean_tables
            )

        print(f"worker-lost campaign (faults: {DIST_LOST_PLAN})")
        lost = _checked_run(
            "worker-lost campaign", lost_dir, args.jobs,
            faults=DIST_LOST_PLAN, extra=workers_extra,
        )
        if lost is None:
            failures += 1
        else:
            failures += _compare_tables(
                "worker-lost", lost_dir, clean_tables
            )
            if "lost" not in lost.stderr:
                print("FAIL: worker-lost run never reported a lost "
                      "worker", file=sys.stderr)
                failures += 1

        print(f"shard-desync campaign (faults: {DIST_DESYNC_PLAN})")
        desynced = _checked_run(
            "shard-desync campaign", desync_dir, args.jobs,
            faults=DIST_DESYNC_PLAN, extra=workers_extra,
        )
        if desynced is None:
            failures += 1
        else:
            failures += _compare_tables(
                "shard-desync", desync_dir, clean_tables
            )
            quarantine = Path(desync_dir) / "dist" / DIST_QUARANTINE_DIR
            quarantined = (
                sorted(p.name for p in quarantine.iterdir())
                if quarantine.is_dir() else []
            )
            if not quarantined:
                print("FAIL: desynced shard was not quarantined under "
                      f"{quarantine}", file=sys.stderr)
                failures += 1
            else:
                print(f"  quarantined desynced shard(s): {quarantined}")

        print(f"killed distributed campaign (SIGTERM while entry 1 "
              f"is running, --workers {DIST_WORKERS})")
        killed = _kill_after_first_table(
            "killed distributed campaign", kill_dir, args.jobs,
            f"delay@campaign:1/{HOLD_SECONDS:g}", extra=workers_extra,
        )
        if killed is None:
            return 1
        failures += _check_killed(
            "killed distributed campaign", *killed, kill_dir
        )

        print("resumed distributed campaign (--resume --workers "
              f"{DIST_WORKERS})")
        resumed = _checked_run(
            "distributed resume", kill_dir, args.jobs,
            extra=workers_extra + ("--resume",),
        )
        if resumed is None:
            failures += 1
        failures += _check_resumed("distributed resume", kill_dir)
        failures += _compare_tables(
            "distributed resume", kill_dir, clean_tables
        )

    if failures:
        print(f"distributed check FAILED ({failures} divergence(s))",
              file=sys.stderr)
        return 1
    print("distributed check passed: clean/lost/desync/kill+resume all "
          "byte-identical to the single-host campaign")
    return 0


#: The always-printed line that announces the bound telemetry port
#: (the only way to learn it when ``--telemetry-port 0`` is used).
TELEMETRY_LINE = re.compile(r"telemetry: http://127\.0\.0\.1:(\d+)/")


def _history_records(cache_dir: str) -> list:
    path = Path(cache_dir) / "history" / "history.jsonl"
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def _get(port: int, route: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{route}", timeout=timeout
    ) as response:
        return response.read()


def _telemetry_check(args) -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="colt-telemetry-") as tmp:
        cache_dir = os.path.join(tmp, "cache")

        # Kill phase: serve telemetry while entry 1 is held open, probe
        # all three endpoints live, then SIGTERM. The server must come
        # down with the process (exit 75, port released) and the killed
        # run must still leave a non-ok history record. (This phase
        # sniffs the subprocess's stdout for the bound port, so it
        # drives its own Popen instead of _kill_after_first_table.)
        print("telemetry campaign (SIGTERM while serving --telemetry-port 0)")
        proc = subprocess.Popen(
            _campaign_cmd(
                cache_dir, args.jobs, extra=("--telemetry-port", "0")
            ),
            env=_campaign_env(f"delay@campaign:1/{HOLD_SECONDS:g}"),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        lines: list = []
        port_found = threading.Event()
        port_box: list = []

        def _read_stdout() -> None:
            for line in proc.stdout:
                lines.append(line)
                match = TELEMETRY_LINE.search(line)
                if match and not port_box:
                    port_box.append(int(match.group(1)))
                    port_found.set()
            port_found.set()  # EOF: stop waiters even without a match

        reader = threading.Thread(target=_read_stdout, daemon=True)
        reader.start()
        port_found.wait(60.0)
        if not port_box:
            proc.terminate()
            proc.wait(timeout=60.0)
            reader.join(timeout=10.0)
            print("FAIL: campaign never announced its telemetry port\n"
                  + "".join(lines), file=sys.stderr)
            return 1
        port = port_box[0]

        first_table = Path(cache_dir) / "campaign" / "tables" / \
            f"{CAMPAIGN_IDS[0]}.txt"
        deadline = time.monotonic() + 300.0
        while not first_table.exists():
            if proc.poll() is not None or time.monotonic() > deadline:
                reader.join(timeout=10.0)
                print(f"FAIL: campaign ended (rc={proc.returncode}) "
                      f"before it could be probed\n{''.join(lines)}",
                      file=sys.stderr)
                return 1
            time.sleep(0.05)

        try:
            if _get(port, "/healthz").strip() != b"ok":
                print("FAIL: /healthz did not answer ok", file=sys.stderr)
                failures += 1
            progress = json.loads(_get(port, "/progress"))
            if "phase" not in progress or "campaign" not in progress:
                print(f"FAIL: /progress incomplete while running: "
                      f"{sorted(progress)}", file=sys.stderr)
                failures += 1
            metrics = _get(port, "/metrics").decode("utf-8")
            if "colt_campaign_experiments" not in metrics:
                print("FAIL: live /metrics lacks campaign counters",
                      file=sys.stderr)
                failures += 1
        except (urllib.error.URLError, OSError) as exc:
            print(f"FAIL: live telemetry probe failed: {exc}",
                  file=sys.stderr)
            failures += 1
        if not failures:
            print(f"  live probes ok on port {port} "
                  f"(phase={progress.get('phase')!r})")

        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=120.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            print("FAIL: campaign did not exit within 120s of SIGTERM "
                  "(telemetry thread wedged the shutdown?)",
                  file=sys.stderr)
            failures += 1
        reader.join(timeout=10.0)
        if proc.returncode != SHUTDOWN_EXIT_CODE:
            print(f"FAIL: killed campaign exited {proc.returncode}, "
                  f"expected {SHUTDOWN_EXIT_CODE}\n{''.join(lines)}",
                  file=sys.stderr)
            failures += 1
        try:
            _get(port, "/healthz", timeout=2.0)
            print(f"FAIL: port {port} still answering after exit "
                  "(telemetry thread leaked)", file=sys.stderr)
            failures += 1
        except (urllib.error.URLError, OSError):
            pass  # refused/reset: the server came down with the process

        records = _history_records(cache_dir)
        if not records:
            print("FAIL: killed run appended no history record",
                  file=sys.stderr)
            failures += 1
        else:
            last = records[-1]
            if last.get("status") == "ok" or not last.get("telemetry"):
                print(f"FAIL: killed run's history record is "
                      f"status={last.get('status')!r} "
                      f"telemetry={last.get('telemetry')!r}; expected a "
                      "non-ok telemetry record", file=sys.stderr)
                failures += 1
            else:
                print(f"  exit {SHUTDOWN_EXIT_CODE}, port released, "
                      f"history recorded status={last['status']!r}")

        print("resumed campaign (--resume, telemetry served again)")
        resumed = _checked_run(
            "resume", cache_dir, args.jobs,
            extra=("--resume", "--telemetry-port", "0"),
        )
        if resumed is None:
            failures += 1
        failures += _check_resumed("resume", cache_dir)
        history = _history_records(cache_dir)
        if len(history) != len(records) + 1 or \
                history[-1].get("status") != "ok":
            print(f"FAIL: resume did not append an ok record "
                  f"({len(records)} -> {len(history)} records, newest "
                  f"{history[-1].get('status')!r})"
                  if history else "FAIL: resume left no history",
                  file=sys.stderr)
            failures += 1
        elif not failures:
            print(f"  journal all done; history now {len(history)} "
                  "record(s), newest status='ok'")

    if failures:
        print(f"telemetry check FAILED ({failures} divergence(s))",
              file=sys.stderr)
        return 1
    print("telemetry check passed: clean SIGTERM shutdown, history "
          "records for killed and resumed runs")
    return 0


#: Mode registry: name -> (check function, one-line description).
MODES = {
    "store": (
        _store_check,
        "in-process fault plan vs clean run, plus corrupted-store "
        "resume (default)",
    ),
    "campaign": (
        _campaign_check,
        "campaign journal: clean, SIGTERM kill, --resume, "
        "stall-watchdog dump",
    ),
    "telemetry": (
        _telemetry_check,
        "telemetry plane: live probes, clean SIGTERM shutdown, "
        "history records",
    ),
    "distributed": (
        _distributed_check,
        f"coordinator/worker layer (--workers {DIST_WORKERS}): clean, "
        "worker-lost, shard-desync quarantine, kill + --resume",
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Verify fault-injected runs recover bit-identical "
                    "results (fig18, QUICK scale)."
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for every run (default: 2)",
    )
    parser.add_argument(
        "--faults", default=DEFAULT_PLAN, metavar="PLAN",
        help=f"fault plan for the store-mode chaos run "
             f"(default: {DEFAULT_PLAN!r})",
    )
    parser.add_argument(
        "--list-modes", action="store_true",
        help="list the check modes and exit",
    )
    for mode, (_check, description) in MODES.items():
        if mode == "store":
            continue  # the default mode needs no flag
        parser.add_argument(
            f"--{mode}", action="store_true", help=f"check: {description}",
        )
    args = parser.parse_args(argv)
    if args.list_modes:
        for mode, (_check, description) in MODES.items():
            print(f"{mode:12s} {description}")
        return 0
    selected = [
        mode for mode in MODES
        if mode != "store" and getattr(args, mode)
    ]
    if len(selected) > 1:
        parser.error(f"pick one mode, not {selected}")
    check, _description = MODES[selected[0] if selected else "store"]
    return check(args)


if __name__ == "__main__":
    raise SystemExit(main())
