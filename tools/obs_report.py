#!/usr/bin/env python
"""Offline run reports and trace validation from obs artifacts.

Consumes the artifacts a ``--trace`` run of ``python -m
repro.experiments`` writes -- the Chrome/Perfetto trace JSON and the
companion ``.metrics.json`` snapshot -- and renders the same
:class:`repro.obs.report.RunReport` the ``--report`` flag prints live:

    python tools/obs_report.py colt-trace.json
    python tools/obs_report.py colt-trace.json --metrics colt-trace.metrics.json

Validation mode is what CI runs against the traced-smoke artifact:

    python tools/obs_report.py colt-trace.json --validate \\
        --min-instruments 15 --require-span capture --require-span replay

``--validate`` checks the trace's structure (every event carries the
keys Perfetto needs), ``--require-span NAME`` asserts at least one
complete span with that name, and ``--min-instruments N`` asserts the
metrics snapshot carries at least N distinct instruments. Exit status
is nonzero on any failed check.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import (  # noqa: E402
    parse_chrome_trace,
    read_metrics_json,
    span_names,
    validate_chrome_trace,
)
from repro.obs.report import RunReport  # noqa: E402


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/obs_report.py",
        description="Render or validate CoLT observability artifacts.",
    )
    parser.add_argument(
        "trace", type=Path, help="Chrome trace-event JSON file"
    )
    parser.add_argument(
        "--metrics", type=Path, default=None, metavar="FILE",
        help="metrics snapshot JSON (default: <trace stem>.metrics.json "
             "when present)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="check trace structure instead of printing the full report",
    )
    parser.add_argument(
        "--min-instruments", type=int, default=None, metavar="N",
        help="fail unless the metrics snapshot has at least N instruments",
    )
    parser.add_argument(
        "--require-span", action="append", default=[], metavar="NAME",
        help="fail unless the trace holds a complete span named NAME "
             "(repeatable)",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if not args.trace.exists():
        print(f"obs_report: no such trace: {args.trace}", file=sys.stderr)
        return 2

    data = json.loads(args.trace.read_text(encoding="utf-8"))
    failures = []
    if args.validate:
        for problem in validate_chrome_trace(data):
            failures.append(f"trace structure: {problem}")
    events = parse_chrome_trace(data)

    metrics_path = args.metrics
    if metrics_path is None:
        candidate = args.trace.with_suffix(".metrics.json")
        if candidate.exists():
            metrics_path = candidate
    snapshot = read_metrics_json(metrics_path) if metrics_path else None

    names = span_names(events)
    for required in args.require_span:
        if not names.get(required):
            failures.append(f"required span missing: {required!r}")
    if args.min_instruments is not None:
        have = len(snapshot) if snapshot is not None else 0
        if have < args.min_instruments:
            failures.append(
                f"instruments: {have} < required {args.min_instruments}"
                + ("" if snapshot is not None else " (no metrics JSON found)")
            )

    if args.validate or failures:
        for failure in failures:
            print(f"FAIL {failure}")
        if not failures:
            spans = sum(names.values())
            print(
                f"OK {args.trace}: {len(events)} events, {spans} spans "
                f"({len(names)} distinct), "
                f"{len(snapshot) if snapshot is not None else 0} instruments"
            )
        return 1 if failures else 0

    report = RunReport.build(events, snapshot)
    print(report.render(), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
