#!/usr/bin/env python
"""Repo-root entry point for the determinism lint.

Equivalent to the ``colt-lint`` console script, but runnable straight
from a checkout with no install step:

    python tools/lint.py src

See ``repro.analysis.lint`` for the rule set.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
