#!/usr/bin/env python
"""Explore CoLT's hardware design space on one workload.

Sweeps the knobs the paper discusses -- the CoLT-SA index shift
(Section 4.1.2 / Figure 19), the fully-associative TLB size
(Section 4.2.4), L2 associativity (Figure 20), and the L2 echo fill
(Section 7.1.3) -- and reports L2 miss eliminations for each variant.

Run:
    python examples/colt_design_space.py [benchmark]
"""

import sys

from repro.common.statistics import percent_eliminated
from repro.core import CoLTDesign, make_mmu_config
from repro.experiments import QUICK, simulation_config
from repro.sim import ExperimentRunner


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "bzip2"
    scale = QUICK.with_updates(accesses=40_000)
    runner = ExperimentRunner()
    base_config = simulation_config(benchmark, scale)
    baseline = runner.run(base_config)
    print(
        f"{benchmark}: baseline 32/128-entry TLBs miss "
        f"{baseline.l2_misses} times at L2 over {baseline.accesses} accesses\n"
    )

    variants = {
        "CoLT-SA shift=1 (pairs)": (
            CoLTDesign.COLT_SA, make_mmu_config(CoLTDesign.COLT_SA, sa_shift=1)
        ),
        "CoLT-SA shift=2 (paper)": (
            CoLTDesign.COLT_SA, make_mmu_config(CoLTDesign.COLT_SA, sa_shift=2)
        ),
        "CoLT-SA shift=3 (aggressive)": (
            CoLTDesign.COLT_SA, make_mmu_config(CoLTDesign.COLT_SA, sa_shift=3)
        ),
        "CoLT-SA shift=2, 8-way L2": (
            CoLTDesign.COLT_SA,
            make_mmu_config(CoLTDesign.COLT_SA, l2_ways=8),
        ),
        "CoLT-FA 8-entry (paper)": (
            CoLTDesign.COLT_FA, make_mmu_config(CoLTDesign.COLT_FA)
        ),
        "CoLT-FA 16-entry": (
            CoLTDesign.COLT_FA,
            make_mmu_config(CoLTDesign.COLT_FA, superpage_entries=16),
        ),
        "CoLT-FA without L2 echo": (
            CoLTDesign.COLT_FA,
            make_mmu_config(CoLTDesign.COLT_FA, fa_fill_l2=False),
        ),
        "CoLT-All (paper)": (
            CoLTDesign.COLT_ALL, make_mmu_config(CoLTDesign.COLT_ALL)
        ),
    }

    print(f"{'variant':32s} {'L2 misses':>10s} {'eliminated':>11s}")
    print("-" * 56)
    for label, (design, mmu) in variants.items():
        result = runner.run(base_config.with_updates(design=design, mmu=mmu))
        eliminated = percent_eliminated(baseline.l2_misses, result.l2_misses)
        print(f"{label:32s} {result.l2_misses:10d} {eliminated:+10.1f}%")

    print(
        "\nThe paper's choices -- shift 2, 8-entry FA TLB with the L2 echo "
        "fill -- balance coalescing reach against conflict misses and "
        "hardware cost; this sweep shows where each knob's value comes from."
    )


if __name__ == "__main__":
    main()
