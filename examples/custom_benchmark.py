#!/usr/bin/env python
"""Define a brand-new workload and evaluate CoLT on it.

The library's workload layer is fully programmable: a benchmark is a set
of memory regions (with their allocation behaviour) plus a mixture of
access phases. This example models a simple in-memory key-value store --
a large hash index allocated up front, a value log appended in small
chunks, and a skewed key popularity -- and asks whether CoLT would help
it.

Run:
    python examples/custom_benchmark.py
"""

from repro.core import CoLTDesign, CoreModel
from repro.experiments import QUICK, simulation_config
from repro.sim import ExperimentRunner
from repro.workloads import BENCHMARKS, BenchmarkProfile, PhaseSpec, RegionSpec


def build_kv_store_profile() -> BenchmarkProfile:
    """A key-value store: hash index + append-only value log."""
    return BenchmarkProfile(
        name="kvstore",
        suite="custom",
        regions=(
            # The index is one big malloc at startup: the buddy allocator
            # will hand it large contiguous runs.
            RegionSpec("index", 6000, populate=True, fault_batch=256),
            # The value log grows in small appends: little contiguity.
            RegionSpec("log", 3000, populate=True, fault_batch=4),
        ),
        phases=(
            # Hash probes: uniform over the index, two accesses per probe.
            PhaseSpec("random", "index", weight=0.30, accesses_per_page=2),
            # Hot keys: 5% of the index takes most of the traffic.
            PhaseSpec("zipf", "index", weight=0.45, accesses_per_page=4,
                      hot_fraction=0.05, hot_weight=0.9),
            # Log appends and compaction scans: sequential.
            PhaseSpec("sequential", "log", weight=0.25, accesses_per_page=6),
        ),
        core=CoreModel(base_cpi=1.1, instructions_per_access=3.0),
        description="Synthetic in-memory KV store (example workload).",
    )


def main() -> None:
    profile = build_kv_store_profile()
    # Register so the simulator can find it by name.
    BENCHMARKS[profile.name] = profile

    scale = QUICK.with_updates(accesses=40_000, benchmarks=("kvstore",))
    runner = ExperimentRunner()
    base_config = simulation_config("kvstore", scale)

    results = runner.run_designs(base_config)
    baseline = results[CoLTDesign.BASELINE]
    print(f"kvstore: contiguity {baseline.average_contiguity:.1f} pages, "
          f"{baseline.l2_misses} baseline L2 misses\n")
    print(f"{'design':10s} {'L2 misses':>10s} {'vs baseline':>12s}")
    for design, result in results.items():
        delta = 100 * (1 - result.l2_misses / max(1, baseline.l2_misses))
        print(f"{design.value:10s} {result.l2_misses:10d} {delta:+11.1f}%")

    print(
        "\nThe index's big startup malloc made it highly coalescible; the "
        "log's 4-page appends less so. CoLT's benefit lands in between -- "
        "run this with your own region/phase mix to evaluate a new "
        "workload in minutes."
    )


if __name__ == "__main__":
    main()
