#!/usr/bin/env python
"""Quickstart: simulate one benchmark under the baseline and CoLT TLBs.

Boots a simulated Linux-like kernel, ages it, runs the mcf workload
model through the paper's TLB hierarchy with and without coalescing,
and prints miss rates, contiguity, and the interpolated speedup.

Run:
    python examples/quickstart.py [benchmark]
"""

import sys

from repro.core import CoLTDesign
from repro.experiments import QUICK, simulation_config
from repro.sim import ExperimentRunner


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = QUICK.with_updates(accesses=40_000)
    runner = ExperimentRunner()

    print(f"Simulating {benchmark!r} (this takes a few seconds)...\n")
    base_config = simulation_config(benchmark, scale)
    results = runner.run_designs(base_config)
    baseline = results[CoLTDesign.BASELINE]

    print(f"OS view: {baseline.trace_unique_pages} pages touched, "
          f"average contiguity {baseline.average_contiguity:.1f} pages, "
          f"{baseline.contiguity.superpage_pages // 512} superpages\n")

    print(f"{'design':10s} {'L1 misses':>10s} {'L2 misses':>10s} "
          f"{'CPI':>7s} {'speedup':>8s}")
    for design, result in results.items():
        speedup = result.performance.improvement_over(baseline.performance)
        print(
            f"{design.value:10s} {result.l1_misses:10d} "
            f"{result.l2_misses:10d} {result.performance.cpi:7.3f} "
            f"{speedup:+7.1f}%"
        )

    colt = results[CoLTDesign.COLT_ALL]
    eliminated = 100 * (1 - colt.l2_misses / max(1, baseline.l2_misses))
    print(
        f"\nCoLT-All eliminated {eliminated:.0f}% of {benchmark}'s L2 TLB "
        f"misses by coalescing the contiguity the OS produced on its own."
    )


if __name__ == "__main__":
    main()
