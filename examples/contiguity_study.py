#!/usr/bin/env python
"""Reproduce the paper's Section 6 contiguity characterisation, small scale.

Runs one benchmark on the aged, loaded machine under the paper's kernel
settings -- THS on/off, normal/low compaction, memhog 0/25/50% -- and
prints the contiguity distribution each one produces. This is the
observation the whole paper rests on: the OS generates intermediate
contiguity (tens of pages) in every configuration.

Run:
    python examples/contiguity_study.py [benchmark]
"""

import sys

from repro.common.cdfs import PAPER_CDF_POINTS
from repro.experiments import QUICK, characterization_config
from repro.sim import ExperimentRunner

SETTINGS = [
    # (label, ths, defrag, memhog)
    ("THS on, normal compaction", True, True, 0.0),
    ("THS off, normal compaction", False, True, 0.0),
    ("THS off, low compaction", False, False, 0.0),
    ("THS on + memhog 25%", True, True, 0.25),
    ("THS on + memhog 50%", True, True, 0.50),
]


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = QUICK.with_updates(accesses=20_000)
    runner = ExperimentRunner()
    points = (1, 4, 16, 64, 256)

    print(f"Page-allocation contiguity of {benchmark!r} "
          f"(page-weighted CDF, non-superpage pages)\n")
    header = f"{'configuration':30s} {'avg':>7s} {'sp':>4s}  " + " ".join(
        f"<={p:<4d}" for p in points
    )
    print(header)
    print("-" * len(header))
    for label, ths, defrag, memhog in SETTINGS:
        config = characterization_config(
            benchmark, scale,
            ths_enabled=ths, defrag_enabled=defrag, memhog_fraction=memhog,
        )
        report = runner.run(config).contiguity
        cdf = report.cdf().evaluate(PAPER_CDF_POINTS)
        row = " ".join(f"{cdf[p]:5.2f}" for p in points)
        print(
            f"{label:30s} {report.average_contiguity:7.1f} "
            f"{report.superpage_pages // 512:4d}  {row}"
        )

    print(
        "\nReading the rows: a CDF reaching 1.0 only at high x means most "
        "pages sit in long contiguous runs -- contiguity that superpages "
        "cannot use (it falls short of 512 pages) but CoLT can."
    )


if __name__ == "__main__":
    main()
